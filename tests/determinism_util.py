"""Canonical run fingerprints for the engine-determinism golden test.

The fast-path work on the simulation kernel (event free-list, threshold
caching, slotted records) must not change *any* observable simulation
output.  To prove it, ``tests/data/determinism_golden.json`` stores a
fingerprint of one fixed-seed run per scheduler system, captured from
the pre-optimization engine; ``tests/test_determinism.py`` recomputes
the same fingerprints against the current engine and requires exact
equality -- bit-identical per-request timestamps and percentiles.

Floats are serialized with ``repr``: CPython's shortest round-tripping
representation, so two runs fingerprint equal iff every value is
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Dict, Optional

from repro.api import quick_run
from repro.control import ControlConfig
from repro.faults import FaultEvent, FaultPlan, RetryPolicy

#: The systems the golden file covers (d-FCFS, JBSQ, RSS++,
#: work stealing, Altocumulus) plus the rack-scale cluster tier and the
#: datacenter fabric tier.  The five single-server entries were captured
#: from the pre-optimization engine; the "rack" entry was captured when
#: the cluster tier was introduced and pins switch timing, steering
#: decisions, and per-server stream spawning ever since; the
#: "datacenter" entry was captured when the fabric tier was introduced
#: and additionally pins spine timing, inter-rack steering, and
#: per-rack stream spawning.
GOLDEN_SYSTEMS = (
    "rss", "rpcvalet", "rsspp", "zygos", "altocumulus", "rack", "datacenter",
)

#: Faulted golden entries: the same fixed workload driven through the
#: fault-injection subsystem (retrying client + injector).  These pin
#: the *faulted* event order -- retry timing, fault-stream coin flips,
#: failover redispatch -- so refactors of repro.faults can't silently
#: change behavior.  Captured when the subsystem was introduced.
FAULTED_GOLDEN_SYSTEMS = (
    "altocumulus+faults", "rack+faults", "datacenter+faults",
)

#: Sharded golden entries: the datacenter workload executed through the
#: conservative parallel-in-time coordinator
#: (:mod:`repro.datacenter.sharded`).  A ``"+sharded<N>"`` suffix runs
#: the same configuration with ``quick_run(shards=N)``; the fingerprints
#: must equal the corresponding serial entries bit-for-bit, which these
#: entries pin permanently (including under fault injection).
SHARDED_GOLDEN_SYSTEMS = (
    "datacenter+sharded2", "datacenter+faults+sharded2",
)

#: Controlled golden entries: the same fixed workloads with an adaptive
#: control plane attached (:mod:`repro.control`).  A ``"+ctl:<name>"``
#: suffix runs the entry with ``ControlConfig(controller=name)``.  The
#: ``static`` entry must stay bit-identical to the corresponding plain
#: entry forever -- attaching a do-nothing controller is not allowed to
#: perturb the event order -- while the ``hysteresis``/``bandit``
#: entries pin the controlled event order (epoch timers, actuation
#: timing, the dedicated ``"control"`` RNG stream) against refactors.
CONTROLLED_GOLDEN_SYSTEMS = (
    "rack+ctl:static",
    "rack+ctl:hysteresis",
    "datacenter+ctl:bandit",
    "rack+faults+ctl:hysteresis",
)

#: Job-structured golden entries: the same fixed workload grouped into
#: jobs (:mod:`repro.workload.jobs`).  A ``"+fanout"`` suffix scatters
#: mixed-width jobs (shared sibling flows) and a ``"+gang"`` suffix
#: admits mixed-demand multi-core gangs; both pin the job-path event
#: order -- the dedicated ``"jobs"`` stream, the scatter emission order,
#: gang admission and shadow dispatch -- against refactors.  Captured
#: when the job model was introduced.
JOB_GOLDEN_SYSTEMS = (
    "rack+fanout", "datacenter+fanout", "altocumulus+gang",
)

#: Data-layer golden entries: the same fixed workload driven through the
#: MICA KVS with an ownership discipline attached
#: (:mod:`repro.kvs.ownership`).  A ``"+crew-mv"`` suffix wires a CREW
#: table with multiversion reads (epoch tracking, stale reads, deferred
#: reclamation); ``"+dcrew-hotkey"`` wires a bounded d-CREW table (d=2)
#: on the hot-key mix across the rack tier.  Both pin the data-path
#: event order -- the KVS op stream, admission-wait startup charging,
#: epoch commits -- against refactors.  Captured when the ownership
#: layer was introduced.
KVS_GOLDEN_SYSTEMS = (
    "altocumulus+crew-mv", "rack+dcrew-hotkey",
)

#: Every golden entry (plain, faulted, sharded, controlled, jobs, then
#: the KVS data layer).
ALL_GOLDEN_SYSTEMS = (
    GOLDEN_SYSTEMS + FAULTED_GOLDEN_SYSTEMS + SHARDED_GOLDEN_SYSTEMS
    + CONTROLLED_GOLDEN_SYSTEMS + JOB_GOLDEN_SYSTEMS + KVS_GOLDEN_SYSTEMS
)

_GOLDEN_RETRY = RetryPolicy(
    timeout_ns=50_000.0,
    max_retries=3,
    backoff_base_ns=20_000.0,
    backoff_cap_ns=100_000.0,
    jitter=0.5,
)

#: One plan per faulted entry, exercising every single-server fault kind
#: (altocumulus) and the rack-only kinds (rack).
GOLDEN_FAULT_PLANS: Dict[str, FaultPlan] = {
    "altocumulus+faults": FaultPlan(
        events=(
            FaultEvent(time_ns=20_000.0, kind="nic_drop", target=0,
                       magnitude=0.2, duration_ns=30_000.0),
            FaultEvent(time_ns=30_000.0, kind="core_stall", target=0,
                       subtarget=3, magnitude=25.0, duration_ns=40_000.0),
            FaultEvent(time_ns=60_000.0, kind="manager_fail", target=0,
                       subtarget=1),
        ),
        retry=_GOLDEN_RETRY,
    ),
    "rack+faults": FaultPlan(
        events=(
            FaultEvent(time_ns=15_000.0, kind="server_crash", target=1,
                       duration_ns=40_000.0),
            FaultEvent(time_ns=30_000.0, kind="tor_degrade", target=2,
                       magnitude=0.25, duration_ns=30_000.0),
        ),
        retry=_GOLDEN_RETRY,
    ),
    # Datacenter-applicable kinds only (targets are racks at this tier):
    # a rack-granular crash, a NIC drop burst, and both spine port fault
    # flavors, overlapping so admission, steering and retry interact.
    "datacenter+faults": FaultPlan(
        events=(
            FaultEvent(time_ns=15_000.0, kind="server_crash", target=1,
                       duration_ns=40_000.0),
            FaultEvent(time_ns=25_000.0, kind="nic_drop", target=0,
                       magnitude=0.3, duration_ns=40_000.0),
            FaultEvent(time_ns=35_000.0, kind="spine_degrade", target=1,
                       magnitude=0.25, duration_ns=30_000.0),
            FaultEvent(time_ns=50_000.0, kind="spine_partition", target=0,
                       duration_ns=25_000.0),
        ),
        retry=_GOLDEN_RETRY,
    ),
}

#: ``"<entry>+sharded<N>"`` suffix: run the entry with ``shards=N``.
_SHARDED_RE = re.compile(r"\+sharded(\d+)$")

#: ``"<entry>+ctl:<name>"`` suffix: run the entry with an attached
#: ``ControlConfig(controller=name)`` at the library-default epoch.
_CTL_RE = re.compile(r"\+ctl:([a-z_]+)$")


def _golden_job_shapes():
    """Fixed job shapes for the ``+fanout`` / ``+gang`` suffixes.

    Built lazily (the suffix strings stay importable even if the jobs
    module is being refactored) but deterministic: the shapes are
    constants of the golden contract.
    """
    from repro.workload.jobs import ChoiceDegree, JobShape

    return {
        "fanout": JobShape(fanout=ChoiceDegree((1, 2, 4), (0.5, 0.3, 0.2))),
        "gang": JobShape(core_demand=ChoiceDegree((1, 2), (0.75, 0.25))),
    }


def _golden_kvs_specs():
    """Fixed data-layer specs for the ``+crew-mv`` / ``+dcrew-hotkey``
    suffixes.  Lazy for the same reason as the job shapes; the specs are
    constants of the golden contract."""
    from repro.kvs.ownership import KvsSpec

    return {
        "crew-mv": KvsSpec(mode="crew", multiversion=True),
        "dcrew-hotkey": KvsSpec(mode="dcrew", d=2, mix="hot_key"),
    }

#: Fixed workload: 32 cores at ~80% load with exponential service, small
#: enough to run all five systems in a few seconds, loaded enough that
#: Altocumulus migrations and work stealing actually trigger.
GOLDEN_PARAMS = dict(
    n_cores=32,
    rate_rps=24e6,
    mean_service_ns=1000.0,
    n_requests=3000,
    seed=7,
)


def run_fingerprint(system: str) -> Dict[str, object]:
    """Run one golden-config simulation and fingerprint its output.

    ``system`` may be a plain registered name, a ``"<name>+faults"``
    entry (same workload under that entry's fault plan), and/or carry a
    ``"+sharded<N>"`` suffix (same workload through the sharded
    parallel-in-time coordinator with N shards), a ``"+ctl:<name>"``
    suffix (same workload with that adaptive controller attached), or a
    ``"+fanout"`` / ``"+gang"`` suffix (same workload grouped into the
    fixed golden job shapes), or a ``"+crew-mv"`` / ``"+dcrew-hotkey"``
    suffix (same workload driven through the MICA data layer under that
    fixed ownership spec).
    """
    kvs = None
    for spec_name, spec_suffix in (("crew-mv", "+crew-mv"),
                                   ("dcrew-hotkey", "+dcrew-hotkey")):
        if system.endswith(spec_suffix):
            kvs = _golden_kvs_specs()[spec_name]
            system = system[: -len(spec_suffix)]
            break
    jobs = None
    for shape_name, shape_suffix in (("fanout", "+fanout"),
                                     ("gang", "+gang")):
        if system.endswith(shape_suffix):
            jobs = _golden_job_shapes()[shape_name]
            system = system[: -len(shape_suffix)]
            break
    control: Optional[ControlConfig] = None
    ctl = _CTL_RE.search(system)
    if ctl is not None:
        control = ControlConfig(controller=ctl.group(1))
        system = system[: ctl.start()]
    shards: Optional[int] = None
    sharded = _SHARDED_RE.search(system)
    if sharded is not None:
        shards = int(sharded.group(1))
        system = system[: sharded.start()]
    faults: Optional[FaultPlan] = GOLDEN_FAULT_PLANS.get(system)
    if faults is not None:
        system = system.rsplit("+", 1)[0]
    result = quick_run(system=system, faults=faults, shards=shards,
                       control=control, jobs=jobs, kvs=kvs, **GOLDEN_PARAMS)
    hasher = hashlib.sha256()
    for r in result.requests:
        record = (
            r.req_id,
            repr(r.arrival),
            repr(r.enqueued),
            repr(r.started),
            repr(r.finished),
            r.migrations,
            r.steals,
            r.core_id,
            r.group_id,
        )
        hasher.update(json.dumps(record).encode())
    lat = result.latency
    job_digest: Optional[Dict[str, object]] = None
    if result.jobs is not None:
        job_digest = {
            "count": result.jobs.count,
            "completed": result.jobs.completed,
            "dropped": result.jobs.dropped,
            "subrequests": result.jobs.subrequests,
            "job_p99_ns": repr(result.jobs.latency.p99),
        }
    fingerprint = {
        "system_name": result.system_name,
        "requests_sha256": hasher.hexdigest(),
        "count": lat.count,
        "mean_ns": repr(lat.mean),
        "p50_ns": repr(lat.p50),
        "p90_ns": repr(lat.p90),
        "p99_ns": repr(lat.p99),
        "p999_ns": repr(lat.p999),
        "max_ns": repr(lat.maximum),
        "sim_time_ns": repr(result.sim_time_ns),
        "throughput_rps": repr(result.throughput_rps),
        "dropped": result.dropped,
    }
    if job_digest is not None:
        fingerprint["jobs"] = job_digest
    return fingerprint


def all_fingerprints() -> Dict[str, Dict[str, object]]:
    return {system: run_fingerprint(system) for system in ALL_GOLDEN_SYSTEMS}
