"""The adaptive-control regression gate.

Pins the control plane's headline claim on the CI-gated chaos scenario
(the lossy NIC from :mod:`repro.experiments.fig_adaptive`): the
hysteresis controller -- which starts from the *weakest reasonable*
static configuration (power-of-2 steering) -- must match or beat every
static policy's during-window p99.  The mechanism: an admin drain
removes the lossy server from the steering set outright, while a static
policy's degradation penalty only biases against it, so under deep
queues the statics keep leaking requests onto a server that drops 90%
of them.

Everything here is deterministic for the fixed seed, so the comparison
is exact -- no tolerance band that drift could hide inside.
"""

import pytest

from repro.experiments.fig_adaptive import _chaos_specs
from repro.runner import run_points

#: Matches the fig_adaptive point at --scale 0.2 (CI-sized, a few
#: seconds for the four cells).
N_REQUESTS = 6000
SEED = 1

GATED_SCENARIO = "nic_drop"


@pytest.fixture(scope="module")
def gated_cells():
    labeled, _, _ = _chaos_specs(N_REQUESTS, SEED)
    picked = [
        (name, spec) for scenario, name, spec in labeled
        if scenario == GATED_SCENARIO and name != "adaptive_bandit"
    ]
    results = run_points([spec for _, spec in picked], label="adaptive-gate")
    return {
        name: point.metrics["p99_during_ns"]
        for (name, _), point in zip(picked, results)
    }


def test_hysteresis_beats_every_static_on_gated_scenario(gated_cells):
    adaptive = gated_cells.pop("adaptive_hyst")
    assert gated_cells, "expected static comparison cells"
    best_static = min(gated_cells.values())
    assert adaptive == adaptive, "during-window p99 must be measurable"
    assert adaptive <= best_static, (
        f"adaptive hysteresis p99 {adaptive:.0f} ns lost to the best "
        f"static policy's {best_static:.0f} ns: {gated_cells}"
    )


def test_statics_pay_for_leaking_onto_the_lossy_server(gated_cells):
    """The gate is only meaningful while the scenario actually
    separates the cells: load-aware statics must not all collapse onto
    the adaptive number."""
    assert max(gated_cells.values()) > 2 * min(gated_cells.values())
