"""Unit tests for the analysis package: metrics, SLO accounting,
migration effectiveness, and table rendering."""

import numpy as np
import pytest

from repro.analysis.effectiveness import (
    EffectivenessBreakdown,
    MigrationClass,
    classify_migrations,
    classify_one,
    migrated_requests,
)
from repro.analysis.metrics import (
    LatencySummary,
    achieved_throughput_rps,
    percentile,
    summarize_latencies,
)
from repro.analysis.slo import (
    SloPolicy,
    counterfactual_violators,
    find_throughput_at_slo,
    prediction_accuracy,
    violation_ratio,
)
from repro.analysis.tables import format_table
from tests.conftest import make_request


def finished(req_id, arrival, latency, **kwargs):
    r = make_request(req_id=req_id, arrival=arrival, **kwargs)
    r.finished = arrival + latency
    return r


class TestMetrics:
    def test_summary_against_numpy(self):
        reqs = [finished(i, 0.0, float(i + 1) * 100) for i in range(100)]
        summary = summarize_latencies(reqs)
        lats = np.array([r.latency for r in reqs])
        assert summary.count == 100
        assert summary.mean == pytest.approx(lats.mean())
        assert summary.p99 == pytest.approx(np.percentile(lats, 99))
        assert summary.maximum == lats.max()

    def test_empty_population(self):
        assert summarize_latencies([]) == LatencySummary.empty()

    def test_incomplete_and_dropped_excluded(self):
        reqs = [finished(0, 0.0, 100.0), make_request(req_id=1)]
        dropped = finished(2, 0.0, 100.0)
        dropped.dropped = True
        summary = summarize_latencies(reqs + [dropped])
        assert summary.count == 1

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([finished(0, 0.0, 1.0)], 150)
        with pytest.raises(ValueError):
            percentile([], 99)

    def test_achieved_throughput(self):
        # 10 requests over 900 ns of arrivals + 100 ns service tail.
        reqs = [finished(i, i * 100.0, 100.0) for i in range(10)]
        rps = achieved_throughput_rps(reqs)
        assert rps == pytest.approx(10 / 1_000e-9)

    def test_throughput_degenerate_cases(self):
        assert achieved_throughput_rps([]) == 0.0
        assert achieved_throughput_rps([finished(0, 0.0, 1.0)]) == 0.0


class TestSlo:
    def test_policy_from_multiplier(self):
        policy = SloPolicy.from_multiplier(850.0, 10.0)
        assert policy.target_ns == 8_500.0
        assert policy.percentile == 99.0

    def test_met_by(self):
        reqs = [finished(i, 0.0, 100.0) for i in range(99)]
        reqs.append(finished(99, 0.0, 10_000.0))
        assert SloPolicy(10_000.0).met_by(reqs)
        assert not SloPolicy(50.0).met_by(reqs)

    def test_violation_ratio(self):
        reqs = [finished(i, 0.0, 100.0 if i < 8 else 9_999.0)
                for i in range(10)]
        assert violation_ratio(reqs, 1_000.0) == pytest.approx(0.2)
        assert violation_ratio([], 1_000.0) == 0.0

    def test_counterfactual_violators_include_saved(self):
        saved = finished(0, 0.0, 100.0)
        saved.no_migration_eta = 50_000.0  # would have violated
        harmless = finished(1, 0.0, 100.0)
        actual = finished(2, 0.0, 99_999.0)
        violators = counterfactual_violators([saved, harmless, actual], 1_000.0)
        assert violators == {0, 2}

    def test_prediction_accuracy(self):
        saved = finished(0, 0.0, 100.0)
        saved.no_migration_eta = 50_000.0
        missed = finished(1, 0.0, 99_999.0)
        reqs = [saved, missed]
        assert prediction_accuracy(reqs, {0}, 1_000.0) == 0.5
        assert prediction_accuracy(reqs, {0, 1}, 1_000.0) == 1.0

    def test_accuracy_vacuous_when_no_violations(self):
        reqs = [finished(0, 0.0, 10.0)]
        assert prediction_accuracy(reqs, set(), 1_000.0) == 1.0

    def test_find_throughput_at_slo(self):
        def run(rate):
            latency = 100.0 if rate < 3.5 else 10_000.0
            return [finished(i, 0.0, latency) for i in range(10)]

        best, curve = find_throughput_at_slo(run, SloPolicy(1_000.0),
                                             [1.0, 2.0, 3.0, 4.0])
        assert best == 3.0
        assert curve[4.0] == 10_000.0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SloPolicy(0.0)
        with pytest.raises(ValueError):
            SloPolicy(1.0, percentile=100.0)


class TestEffectiveness:
    def _migrated(self, req_id, actual_latency, counterfactual_latency):
        r = finished(req_id, 0.0, actual_latency)
        r.migrations = 1
        r.no_migration_eta = counterfactual_latency
        return r

    def test_four_way_classification(self):
        slo = 1_000.0
        eff = self._migrated(0, 500.0, 5_000.0)
        no_harm = self._migrated(1, 500.0, 800.0)
        no_benefit = self._migrated(2, 5_000.0, 9_000.0)
        false = self._migrated(3, 5_000.0, 500.0)
        assert classify_one(eff, slo) is MigrationClass.EFF
        assert classify_one(no_harm, slo) is MigrationClass.INEFF_NO_HARM
        assert classify_one(no_benefit, slo) is MigrationClass.INEFF_NO_BENEFIT
        assert classify_one(false, slo) is MigrationClass.FALSE

    def test_breakdown_counts_and_ratios(self):
        slo = 1_000.0
        reqs = [
            self._migrated(0, 500.0, 5_000.0),
            self._migrated(1, 500.0, 5_000.0),
            self._migrated(2, 500.0, 800.0),
            finished(3, 0.0, 200.0),  # not migrated: excluded
        ]
        breakdown = classify_migrations(reqs, slo)
        assert breakdown.total == 3
        assert breakdown.counts[MigrationClass.EFF] == 2
        assert breakdown.effective_ratio == pytest.approx(2 / 3)
        assert breakdown.false_count == 0
        assert breakdown.as_dict()["eff"] == 2

    def test_missing_counterfactual_rejected(self):
        r = finished(0, 0.0, 100.0)
        with pytest.raises(ValueError):
            classify_one(r, 1_000.0)

    def test_migrated_requests_filter(self):
        a = self._migrated(0, 1.0, 1.0)
        b = finished(1, 0.0, 1.0)
        assert migrated_requests([a, b]) == [a]

    def test_empty_breakdown(self):
        breakdown = EffectivenessBreakdown()
        assert breakdown.total == 0
        assert breakdown.effective_ratio == 0.0


class TestTables:
    def test_alignment_and_headers(self):
        table = format_table(["name", "value"], [["a", 1.5], ["bbbb", 22]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert len({len(l) for l in lines if "|" in l}) == 1  # aligned

    def test_title_rendering(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.startswith("My Table\n========")

    def test_float_precision_and_specials(self):
        table = format_table(
            ["v"], [[1.23456], [float("inf")], [float("nan")], [True]],
            precision=2,
        )
        assert "1.23" in table
        assert "inf" in table
        assert "nan" in table
        assert "yes" in table

    def test_column_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
