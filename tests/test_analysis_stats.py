"""Unit tests for multi-seed statistics."""

import pytest

from repro.analysis.stats import (
    SeedSweepResult,
    confidence_interval,
    overlapping,
    seed_sweep,
)


class TestConfidenceInterval:
    def test_mean_and_symmetry(self):
        result = confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert result.mean == 3.0
        assert result.ci_low < 3.0 < result.ci_high
        assert (3.0 - result.ci_low) == pytest.approx(result.ci_high - 3.0)

    def test_zero_variance_collapses(self):
        result = confidence_interval([7.0, 7.0, 7.0])
        assert result.std == 0.0
        assert result.ci_low == result.ci_high == 7.0

    def test_more_samples_tighter_interval(self):
        wide = confidence_interval([1.0, 5.0])
        narrow = confidence_interval([1.0, 5.0] * 10)
        assert narrow.ci_half_width < wide.ci_half_width

    def test_higher_confidence_wider(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert confidence_interval(values, 0.99).ci_half_width > (
            confidence_interval(values, 0.90).ci_half_width
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.0)


class TestSeedSweep:
    def test_runs_measure_per_seed(self):
        seen = []

        def measure(seed):
            seen.append(seed)
            return float(seed)

        result = seed_sweep(measure, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert result.mean == 2.0
        assert result.n == 3

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            seed_sweep(lambda s: 0.0, seeds=[1])

    def test_simulation_sweep_end_to_end(self):
        """p50 latency of a low-load system is seed-stable: a tight CI
        around delivery + service."""
        from repro.api import quick_run
        from repro.workload.service import Fixed

        def p50(seed):
            return quick_run(system="cfcfs", n_cores=8, rate_rps=1e5,
                             n_requests=2_000, seed=seed,
                             service=Fixed(500.0)).latency.p50

        result = seed_sweep(p50, seeds=[1, 2, 3, 4])
        assert result.mean == pytest.approx(530.0, abs=5.0)
        assert result.ci_half_width < 5.0


class TestOverlap:
    def _fixed(self, low, high):
        mid = (low + high) / 2
        return SeedSweepResult((low, high), mid, 0.0, low, high, 0.95)

    def test_overlapping_intervals(self):
        assert overlapping(self._fixed(1, 3), self._fixed(2, 4))
        assert overlapping(self._fixed(2, 4), self._fixed(1, 3))

    def test_disjoint_intervals(self):
        assert not overlapping(self._fixed(1, 2), self._fixed(3, 4))
