"""Unit tests for the request-timeline telemetry."""

import pytest

from repro.analysis.timeline import TimelineRecorder
from tests.conftest import make_request


def finished_request(req_id=0, arrival=100.0, latency=900.0, migrations=0):
    r = make_request(req_id=req_id, arrival=arrival, service_time=500.0)
    r.enqueued = arrival + 30.0
    r.queue_len_at_arrival = 3
    r.started = arrival + latency - 500.0
    r.finished = arrival + latency
    r.core_id = 7
    r.migrations = migrations
    return r


class TestRecording:
    def test_manual_events_in_order(self):
        recorder = TimelineRecorder()
        recorder.record(1, 10.0, "a")
        recorder.record(1, 20.0, "b", "extra")
        timeline = recorder.get(1)
        assert [e.what for e in timeline.events] == ["a", "b"]
        assert timeline.span_ns == 10.0

    def test_lifecycle_backfill(self):
        recorder = TimelineRecorder()
        recorder.record_lifecycle(finished_request(migrations=1))
        timeline = recorder.get(0)
        whats = [e.what for e in timeline.events]
        assert whats == ["nic_arrival", "enqueued", "migrated", "started",
                         "finished"]

    def test_watch_filter(self):
        recorder = TimelineRecorder(watch={5})
        recorder.record(5, 1.0, "x")
        recorder.record(6, 1.0, "x")
        assert recorder.get(5) is not None
        assert recorder.get(6) is None

    def test_memory_guard(self):
        recorder = TimelineRecorder(max_requests=2)
        for i in range(5):
            recorder.record(i, 1.0, "x")
        assert len(recorder) == 2
        assert recorder.dropped == 3

    def test_completion_hook_integration(self):
        """The recorder plugs straight into a system's completion hooks."""
        from repro.api import run_workload
        from repro.schedulers.jbsq import ideal_cfcfs
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams
        from repro.workload.arrivals import DeterministicArrivals
        from repro.workload.service import Fixed

        sim, streams = Simulator(), RandomStreams(1)
        system = ideal_cfcfs(sim, streams, 2)
        recorder = TimelineRecorder()
        system.completion_hooks.append(recorder.record_lifecycle)
        run_workload(system, sim, streams, DeterministicArrivals(1e6),
                     Fixed(500.0), n_requests=20, warmup_fraction=0.0)
        assert len(recorder) == 20


class TestRendering:
    def test_render_contains_deltas_and_details(self):
        recorder = TimelineRecorder()
        recorder.record_lifecycle(finished_request())
        text = recorder.get(0).render()
        assert "request #0" in text
        assert "core=7" in text
        assert "(+" in text  # inter-event delta shown

    def test_slowest_orders_by_span(self):
        recorder = TimelineRecorder()
        recorder.record_lifecycle(finished_request(req_id=1, latency=500.0))
        recorder.record_lifecycle(finished_request(req_id=2, latency=5_000.0))
        slowest = recorder.slowest(1)
        assert slowest[0].req_id == 2
        with pytest.raises(ValueError):
            recorder.slowest(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimelineRecorder(max_requests=0)
