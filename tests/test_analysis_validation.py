"""Unit tests for the closed-form queueing validators."""

import pytest

from repro.analysis.validation import (
    ValidationPoint,
    md1_mean_wait_ns,
    mg1_mean_wait_ns,
    mm1_mean_wait_ns,
    mmk_mean_wait_ns,
)


class TestClosedForms:
    def test_mm1_textbook_value(self):
        # rho=0.5, S=1000: W = 0.5/0.5 * 1000 = 1000.
        assert mm1_mean_wait_ns(0.5, 1_000.0) == 1_000.0

    def test_md1_is_half_mm1(self):
        assert md1_mean_wait_ns(0.7, 1_000.0) == pytest.approx(
            mm1_mean_wait_ns(0.7, 1_000.0) / 2
        )

    def test_mg1_reduces_to_mm1_at_cv1(self):
        assert mg1_mean_wait_ns(0.7, 1_000.0, 1.0) == pytest.approx(
            mm1_mean_wait_ns(0.7, 1_000.0)
        )

    def test_mg1_grows_with_variance(self):
        low = mg1_mean_wait_ns(0.7, 1_000.0, 0.5)
        high = mg1_mean_wait_ns(0.7, 1_000.0, 10.0)
        assert high > low

    def test_mmk_reduces_to_mm1_at_k1(self):
        assert mmk_mean_wait_ns(1, 0.6, 1_000.0) == pytest.approx(
            mm1_mean_wait_ns(0.6, 1_000.0)
        )

    def test_pooling_reduces_wait(self):
        assert mmk_mean_wait_ns(64, 0.8, 1_000.0) < mmk_mean_wait_ns(
            8, 0.8, 1_000.0
        )

    def test_wait_diverges_near_saturation(self):
        assert mm1_mean_wait_ns(0.99, 1_000.0) > 50_000.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mm1_mean_wait_ns(1.0, 1_000.0)
        with pytest.raises(ValueError):
            mm1_mean_wait_ns(0.5, 0.0)
        with pytest.raises(ValueError):
            mg1_mean_wait_ns(0.5, 1_000.0, -1.0)
        with pytest.raises(ValueError):
            mmk_mean_wait_ns(0, 0.5, 1_000.0)


class TestValidationPoint:
    def test_relative_error(self):
        point = ValidationPoint("M/M/1", 1, 0.5, 1_000.0, 1_100.0)
        assert point.relative_error == pytest.approx(0.1)

    def test_zero_prediction_edge(self):
        exact = ValidationPoint("x", 1, 0.0, 0.0, 0.0)
        assert exact.relative_error == 0.0
        off = ValidationPoint("x", 1, 0.0, 0.0, 5.0)
        assert off.relative_error == float("inf")
