"""Unit tests for the public API facade."""

import pytest

from repro.api import (
    SimulationResult,
    available_systems,
    build_system,
    quick_run,
    register_system,
    run_workload,
)
from repro.schedulers.rss import RssSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Fixed


class TestRegistry:
    def test_all_paper_systems_registered(self):
        names = set(available_systems())
        assert {"rss", "ix", "zygos", "shinjuku", "rpcvalet", "nebula",
                "nanopu", "cfcfs", "altocumulus"} <= names

    def test_build_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            build_system("warp", Simulator(), RandomStreams(0), 4)

    def test_register_custom_system(self):
        register_system(
            "custom-rss-for-test",
            lambda sim, streams, n: RssSystem(sim, streams, n),
        )
        system = build_system("custom-rss-for-test", Simulator(),
                              RandomStreams(0), 4)
        assert isinstance(system, RssSystem)
        with pytest.raises(ValueError, match="already registered"):
            register_system("custom-rss-for-test", lambda s, r, n: None)

    def test_altocumulus_grouping_heuristic(self):
        sim, streams = Simulator(), RandomStreams(0)
        system = build_system("altocumulus", sim, streams, 64)
        assert system.config.n_groups == 4
        assert system.config.group_size == 16


class TestQuickRun:
    @pytest.mark.parametrize("name", ["rss", "cfcfs", "nebula", "altocumulus"])
    def test_runs_and_measures(self, name):
        result = quick_run(system=name, n_cores=8, rate_rps=1e6,
                           n_requests=2_000, seed=3)
        assert isinstance(result, SimulationResult)
        assert result.latency.count > 0
        assert result.throughput_rps > 0
        assert 0 <= result.utilization <= 1
        assert result.system is not None

    def test_deterministic_given_seed(self):
        a = quick_run(system="cfcfs", n_cores=4, n_requests=2_000, seed=9)
        b = quick_run(system="cfcfs", n_cores=4, n_requests=2_000, seed=9)
        assert a.latency.p99 == b.latency.p99
        assert a.sim_time_ns == b.sim_time_ns

    def test_different_seeds_differ(self):
        a = quick_run(system="cfcfs", n_cores=4, n_requests=2_000, seed=1)
        b = quick_run(system="cfcfs", n_cores=4, n_requests=2_000, seed=2)
        assert a.latency.p99 != b.latency.p99

    def test_custom_service_distribution(self):
        result = quick_run(system="cfcfs", n_cores=8, rate_rps=1e5,
                           n_requests=1_000, service=Fixed(500.0))
        assert result.latency.p50 == pytest.approx(530.0, abs=5.0)

    def test_violation_ratio_helper(self):
        result = quick_run(system="cfcfs", n_cores=8, rate_rps=1e5,
                           n_requests=1_000, service=Fixed(500.0))
        assert result.violation_ratio(1.0) == 1.0  # everything over 1 ns
        assert result.violation_ratio(1e9) == 0.0


class TestRunWorkload:
    def test_warmup_discarded(self):
        sim, streams = Simulator(), RandomStreams(0)
        system = build_system("cfcfs", sim, streams, 4)
        result = run_workload(
            system, sim, streams, PoissonArrivals(1e6), Fixed(100.0),
            n_requests=1_000, warmup_fraction=0.2,
        )
        assert len(result.requests) == 800
        assert result.offered_rps == pytest.approx(1e6)
