"""Unit tests for the ASCII chart helpers."""

import pytest

from repro.analysis.ascii_plot import bar_chart, line_chart


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart(
            {"a": [(0, 1), (1, 2)], "b": [(0, 2), (1, 4)]},
            width=20, height=8,
        )
        assert "o" in chart and "x" in chart
        assert "o=a" in chart and "x=b" in chart

    def test_dimensions(self):
        chart = line_chart({"a": [(0, 1), (10, 5)]}, width=30, height=10)
        plot_rows = [l for l in chart.splitlines() if l.startswith("|")]
        assert len(plot_rows) == 10
        assert all(len(l) == 31 for l in plot_rows)

    def test_log_scale(self):
        chart = line_chart({"a": [(0, 1.0), (1, 1000.0)]}, log_y=True)
        assert "(log)" in chart

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 0.0)]}, log_y=True)

    def test_axis_labels_mention_range(self):
        chart = line_chart({"a": [(2.0, 5.0), (8.0, 9.0)]},
                           x_label="MRPS", y_label="p99")
        assert "MRPS: 2 .. 8" in chart
        assert "p99" in chart

    def test_flat_series_does_not_crash(self):
        line_chart({"a": [(0, 5.0), (1, 5.0)]})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart({"small": 1.0, "big": 10.0}, width=10)
        lines = chart.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 1

    def test_unit_suffix(self):
        chart = bar_chart({"x": 5.0}, unit=" MRPS")
        assert "5 MRPS" in chart

    def test_zero_values_allowed(self):
        chart = bar_chart({"x": 0.0, "y": 0.0})
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})
