"""Tests for the closed-loop load generator."""

import pytest

from repro.schedulers.jbsq import ideal_cfcfs
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.closed_loop import ClosedLoopGenerator
from repro.workload.service import Fixed


def run_closed(sim, streams, n_cores=2, n_clients=4, n_requests=40,
               think_ns=0.0, service_ns=1_000.0):
    system = ideal_cfcfs(sim, streams, n_cores)
    generator = ClosedLoopGenerator(
        sim, streams, system, Fixed(service_ns),
        n_clients=n_clients, n_requests=n_requests, think_ns=think_ns,
    )
    system.expect(n_requests)
    generator.start()
    sim.run(until=10**12)
    return system, generator


class TestBasics:
    def test_emits_exactly_n_requests(self, sim, streams):
        system, generator = run_closed(sim, streams)
        assert generator.emitted == 40
        assert len(generator.measured_requests()) == 40

    def test_one_outstanding_per_client(self, sim, streams):
        """A client never has two requests in flight: its i-th request
        arrives only after its (i-1)-th finished."""
        system, generator = run_closed(sim, streams, think_ns=100.0)
        by_client = {}
        for r in sorted(generator.requests, key=lambda r: r.arrival):
            by_client.setdefault(r.connection, []).append(r)
        for requests in by_client.values():
            for prev, nxt in zip(requests, requests[1:]):
                assert nxt.arrival >= prev.finished

    def test_think_time_spaces_requests(self, sim, streams):
        _, fast = run_closed(sim, streams, think_ns=0.0)
        sim2, streams2 = Simulator(), RandomStreams(12345)
        _, slow = run_closed(sim2, streams2, think_ns=50_000.0)
        assert slow.achieved_rate_rps() < fast.achieved_rate_rps() / 2

    def test_self_throttling_under_slow_server(self, sim, streams):
        """The closed loop's defining property: a saturated server just
        slows the clients down instead of building unbounded queues."""
        system, generator = run_closed(sim, streams, n_cores=1,
                                       n_clients=8, service_ns=10_000.0)
        # With 8 clients on 1 core, waiting is bounded by the client
        # population, not by time: max latency <= 8 x service.
        worst = max(r.latency for r in generator.measured_requests())
        assert worst <= 8 * 10_000.0 + 1_000.0


class TestValidation:
    def test_invalid_parameters(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 2)
        with pytest.raises(ValueError):
            ClosedLoopGenerator(sim, streams, system, Fixed(1.0),
                                n_clients=0, n_requests=10)
        with pytest.raises(ValueError):
            ClosedLoopGenerator(sim, streams, system, Fixed(1.0),
                                n_clients=8, n_requests=4)
        with pytest.raises(ValueError):
            ClosedLoopGenerator(sim, streams, system, Fixed(1.0),
                                n_clients=2, n_requests=10, think_ns=-1.0)
