"""Unit tests for the rack tier: ToR switch, steering policies,
topology wiring, and cluster metrics."""

import pytest

from repro.api import quick_run
from repro.cluster.metrics import imbalance_index
from repro.cluster.policies import (
    ConnectionHashSteering,
    PowerOfDSteering,
    RoundRobinSteering,
    ShortestExpectedWaitSteering,
    make_policy,
)
from repro.cluster.switch import ToRSwitch
from repro.cluster.topology import RackConfig, build_rack
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.request import Request


def _request(req_id=0, connection=0, size_bytes=300):
    return Request(
        req_id=req_id, arrival=0.0, service_time=1000.0,
        size_bytes=size_bytes, connection=connection,
    )


class TestToRSwitch:
    def test_serialization_time_is_wire_time(self):
        switch = ToRSwitch(Simulator(), n_ports=2, bandwidth_gbps=100.0)
        assert switch.serialization_ns(300) == pytest.approx(24.0)
        assert switch.serialization_ns(1500) == pytest.approx(120.0)

    def test_forward_pays_serialization_plus_latency(self):
        sim = Simulator()
        switch = ToRSwitch(
            sim, n_ports=1, bandwidth_gbps=100.0, forward_latency_ns=250.0
        )
        delivered = []
        assert switch.forward(
            _request(size_bytes=300), 0, lambda r: delivered.append(sim.now)
        )
        sim.run()
        assert delivered == [pytest.approx(24.0 + 250.0)]
        assert switch.forwarded == 1

    def test_same_port_requests_serialize_behind_each_other(self):
        sim = Simulator()
        switch = ToRSwitch(
            sim, n_ports=1, bandwidth_gbps=100.0, forward_latency_ns=0.0
        )
        delivered = []
        for i in range(3):
            switch.forward(
                _request(req_id=i, size_bytes=1000),
                0,
                lambda r: delivered.append((r.req_id, sim.now)),
            )
        sim.run()
        # 1000 B at 100 Gbps = 80 ns on the wire, back to back.
        assert delivered == [
            (0, pytest.approx(80.0)),
            (1, pytest.approx(160.0)),
            (2, pytest.approx(240.0)),
        ]
        assert switch.queue_wait_ns == pytest.approx(80.0 + 160.0)

    def test_distinct_ports_do_not_contend(self):
        sim = Simulator()
        switch = ToRSwitch(
            sim, n_ports=2, bandwidth_gbps=100.0, forward_latency_ns=0.0
        )
        delivered = []
        switch.forward(_request(0, size_bytes=1000), 0,
                       lambda r: delivered.append(sim.now))
        switch.forward(_request(1, size_bytes=1000), 1,
                       lambda r: delivered.append(sim.now))
        sim.run()
        assert delivered == [pytest.approx(80.0), pytest.approx(80.0)]
        assert switch.queue_wait_ns == 0.0

    def test_full_port_tail_drops_and_accounts(self):
        sim = Simulator()
        drops = []
        switch = ToRSwitch(
            sim, n_ports=2, port_queue_depth=2,
            on_drop=lambda r, port: drops.append((r.req_id, port)),
        )
        results = [
            switch.forward(_request(i), 0, lambda r: None) for i in range(4)
        ]
        assert results == [True, True, False, False]
        assert switch.dropped == 2
        assert switch.dropped_per_port == [2, 0]
        assert drops == [(2, 0), (3, 0)]
        assert switch.occupancy(0) == 2

    def test_dropped_request_is_marked(self):
        sim = Simulator()
        switch = ToRSwitch(sim, n_ports=1, port_queue_depth=1)
        victim = _request(1)
        switch.forward(_request(0), 0, lambda r: None)
        switch.forward(victim, 0, lambda r: None)
        assert victim.dropped

    def test_buffer_slot_freed_after_transmit(self):
        sim = Simulator()
        switch = ToRSwitch(sim, n_ports=1, port_queue_depth=1)
        assert switch.forward(_request(0), 0, lambda r: None)
        assert switch.occupancy(0) == 1
        sim.run()
        assert switch.occupancy(0) == 0
        assert switch.forward(_request(1), 0, lambda r: None)

    def test_unbounded_port_never_drops(self):
        sim = Simulator()
        switch = ToRSwitch(sim, n_ports=1, port_queue_depth=None)
        for i in range(1000):
            assert switch.forward(_request(i), 0, lambda r: None)
        assert switch.dropped == 0

    def test_port_out_of_range_rejected(self):
        switch = ToRSwitch(Simulator(), n_ports=2)
        with pytest.raises(ValueError, match="port"):
            switch.forward(_request(), 2, lambda r: None)

    @pytest.mark.parametrize("kwargs", [
        dict(n_ports=0),
        dict(n_ports=2, bandwidth_gbps=0.0),
        dict(n_ports=2, forward_latency_ns=-1.0),
        dict(n_ports=2, port_queue_depth=0),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ToRSwitch(Simulator(), **kwargs)


class TestSteeringPolicies:
    def test_hash_is_stable_per_connection_and_in_range(self):
        policy = ConnectionHashSteering(4)
        picks = [policy.pick_server(_request(connection=c)) for c in range(64)]
        assert all(0 <= p < 4 for p in picks)
        repeat = [policy.pick_server(_request(connection=c)) for c in range(64)]
        assert picks == repeat
        assert len(set(picks)) > 1  # pseudo-random across flows

    def test_round_robin_rotates(self):
        policy = RoundRobinSteering(3)
        picks = [policy.pick_server(_request(i)) for i in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]
        assert policy.decisions == [3, 2, 2]

    def test_power_of_d_prefers_the_shorter_queue(self):
        sim = Simulator()
        loads = [10.0, 0.0]
        policy = PowerOfDSteering(
            2, probe=lambda i: loads[i],
            rng=RandomStreams(1).get("steering"), sim=sim, d=2,
        )
        assert policy.pick_server(_request()) == 1

    def test_power_of_d_tracks_own_sends_optimistically(self):
        sim = Simulator()
        # Frozen external view: both servers always report 0 outstanding,
        # but stale estimates make consecutive sends spread out anyway.
        policy = PowerOfDSteering(
            2, probe=lambda i: 0.0,
            rng=RandomStreams(1).get("steering"), sim=sim, d=2,
            staleness_ns=1e12,
        )
        picks = [policy.pick_server(_request(i)) for i in range(8)]
        assert sorted(policy.decisions) == [4, 4], picks

    def test_power_of_d_staleness_gates_probes(self):
        sim = Simulator()
        probes = []

        def probe(i):
            probes.append(i)
            return 0.0

        policy = PowerOfDSteering(
            2, probe=probe, rng=RandomStreams(1).get("steering"), sim=sim,
            d=2, staleness_ns=100.0,
        )
        policy.pick_server(_request(0))
        assert policy.refreshes == 2  # both candidates probed fresh
        policy.pick_server(_request(1))
        assert policy.refreshes == 2  # cached within the staleness window
        sim.run(until=100.0)
        policy.pick_server(_request(2))
        assert policy.refreshes == 4  # window expired, re-probed

    def test_power_of_d_with_zero_staleness_always_probes(self):
        sim = Simulator()
        policy = PowerOfDSteering(
            2, probe=lambda i: float(i), rng=RandomStreams(1).get("steering"),
            sim=sim, d=2, staleness_ns=0.0,
        )
        for i in range(5):
            assert policy.pick_server(_request(i)) == 0
        assert policy.refreshes == 10

    def test_power_of_d_subsamples_when_d_below_n(self):
        sim = Simulator()
        policy = PowerOfDSteering(
            8, probe=lambda i: 0.0, rng=RandomStreams(1).get("steering"),
            sim=sim, d=2, staleness_ns=0.0,
        )
        for i in range(200):
            policy.pick_server(_request(i))
        assert sum(policy.decisions) == 200
        assert all(count > 0 for count in policy.decisions)

    def test_shortest_wait_steers_to_minimum_expected_wait(self):
        sim = Simulator()
        loads = [8.0, 2.0, 5.0]
        policy = ShortestExpectedWaitSteering(
            3, probe=lambda i: loads[i], sim=sim, cores_per_server=4,
        )
        policy.start()
        assert policy.pick_server(_request()) == 1
        policy.shutdown()

    def test_shortest_wait_normalizes_by_core_count(self):
        sim = Simulator()
        policy = ShortestExpectedWaitSteering(
            2, probe=lambda i: 4.0, sim=sim, cores_per_server=2,
        )
        policy.start()
        assert policy.expected_wait(0) == pytest.approx(2.0)
        policy.shutdown()

    def test_shortest_wait_ties_rotate(self):
        sim = Simulator()
        policy = ShortestExpectedWaitSteering(
            4, probe=lambda i: 0.0, sim=sim, cores_per_server=1_000_000,
        )
        policy.start()
        picks = [policy.pick_server(_request(i)) for i in range(4)]
        policy.shutdown()
        # Near-zero normalized waits: the rotating tie-break spreads load
        # instead of hammering server 0.
        assert sorted(picks) == [0, 1, 2, 3]

    def test_shortest_wait_resamples_periodically(self):
        sim = Simulator()
        policy = ShortestExpectedWaitSteering(
            2, probe=lambda i: 0.0, sim=sim, cores_per_server=1,
            sample_period_ns=100.0,
        )
        policy.start()
        assert policy.samples_taken == 1
        sim.run(until=350.0)
        assert policy.samples_taken == 4
        policy.shutdown()
        sim.run(until=1_000.0)
        assert policy.samples_taken == 4  # timer cancelled

    def test_make_policy_builds_each_registered_name(self):
        sim = Simulator()
        rng = RandomStreams(1).get("steering")
        expectations = {
            "hash": ConnectionHashSteering,
            "round_robin": RoundRobinSteering,
            "power_of_d": PowerOfDSteering,
            "shortest_wait": ShortestExpectedWaitSteering,
        }
        for name, cls in expectations.items():
            policy = make_policy(
                name, n_servers=2, probe=lambda i: 0.0, sim=sim, rng=rng,
                cores_per_server=4,
            )
            assert isinstance(policy, cls)
            assert policy.name == name

    def test_make_policy_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown steering policy"):
            make_policy(
                "random", n_servers=2, probe=lambda i: 0.0, sim=Simulator(),
                rng=RandomStreams(1).get("steering"), cores_per_server=4,
            )

    @pytest.mark.parametrize("kwargs", [
        dict(d=0),
        dict(staleness_ns=-1.0),
    ])
    def test_power_of_d_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PowerOfDSteering(
                2, probe=lambda i: 0.0,
                rng=RandomStreams(1).get("steering"), sim=Simulator(),
                **kwargs,
            )

    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinSteering(0)


class TestRackConfig:
    def test_capacity_and_core_accounting(self):
        config = RackConfig(n_servers=4, cores_per_server=16)
        assert config.total_cores == 64
        assert config.capacity_rps(1000.0) == pytest.approx(64e6)

    @pytest.mark.parametrize("kwargs", [
        dict(n_servers=0),
        dict(cores_per_server=0),
        dict(policy="random"),
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RackConfig(**kwargs)


class TestRackCluster:
    def _run_rack(self, config, n_requests=2000, rate_rps=8e6, seed=3):
        from repro.api import run_workload
        from repro.workload.arrivals import PoissonArrivals
        from repro.workload.service import Exponential

        sim = Simulator()
        streams = RandomStreams(seed)
        rack = build_rack(sim, streams, config)
        return run_workload(
            rack, sim, streams,
            arrivals=PoissonArrivals(rate_rps),
            service=Exponential(1000.0),
            n_requests=n_requests,
        )

    def test_quick_run_drives_a_whole_rack(self):
        result = quick_run(
            system="rack", n_cores=32, rate_rps=8e6,
            mean_service_ns=1000.0, n_requests=2000, seed=7,
        )
        assert result.system_name.startswith("rack[")
        assert result.throughput_rps > 0
        assert "cluster.imbalance_index" in result.extra
        assert result.extra["cluster.imbalance_index"] >= 1.0
        assert result.metrics["cluster.imbalance_index"] >= 1.0

    def test_every_offered_request_terminates(self):
        config = RackConfig(
            n_servers=4, cores_per_server=4, system="rss", policy="round_robin"
        )
        result = self._run_rack(config)
        rack = result.system
        assert rack.stats.offered == 2000
        assert rack.stats.completed + rack.stats.dropped == 2000

    def test_tiny_switch_buffers_drop_but_still_terminate(self):
        config = RackConfig(
            n_servers=2, cores_per_server=2, system="rss", policy="hash",
            port_queue_depth=4,
        )
        result = self._run_rack(config, rate_rps=16e6)
        rack = result.system
        assert rack.switch.dropped > 0
        assert rack.stats.extra["cluster.switch_dropped"] == rack.switch.dropped
        assert isinstance(rack.stats.extra["cluster.switch_dropped"], int)
        assert rack.stats.completed + rack.stats.dropped == 2000

    def test_outstanding_probe_counts_in_flight_work(self):
        sim = Simulator()
        streams = RandomStreams(1)
        rack = build_rack(
            sim, streams,
            RackConfig(n_servers=2, cores_per_server=2, system="rss",
                       policy="round_robin"),
        )
        assert rack.outstanding(0) == 0.0
        rack.servers[0].stats.offered = 5
        rack.servers[0].stats.completed = 2
        assert rack.outstanding(0) == 3.0

    def test_summary_reports_policy_telemetry(self):
        config = RackConfig(
            n_servers=2, cores_per_server=4, system="rss",
            policy="shortest_wait",
        )
        result = self._run_rack(config, n_requests=500)
        assert result.extra["cluster.steer_samples"] >= 1
        assert (
            result.extra["cluster.steer_srv0"]
            + result.extra["cluster.steer_srv1"]
            == 500
        )


class TestClusterMetrics:
    def test_imbalance_index_edge_cases(self):
        assert imbalance_index([]) == 0.0
        assert imbalance_index([0, 0, 0]) == 0.0
        assert imbalance_index([5, 5, 5, 5]) == pytest.approx(1.0)
        assert imbalance_index([12, 0, 0, 0]) == pytest.approx(4.0)
