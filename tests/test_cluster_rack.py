"""Rack-level behavior tests: the steering-policy regression the cluster
tier exists to show, and sweep determinism of the fig_rack experiment."""

import pytest

from repro.api import run_workload
from repro.cluster.topology import RackConfig, build_rack
from repro.runner import overrides
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Exponential


def _run_policy(policy, seed=3, **config_kwargs):
    """A skewed, highly loaded 4-server rack under one steering policy.

    4x4 d-FCFS servers at 75% aggregate load with Zipf-skewed flows: the
    hottest flow alone carries more traffic than one server can absorb,
    so load-oblivious steering must saturate whichever server it lands
    on.
    """
    sim = Simulator()
    streams = RandomStreams(seed)
    rack = build_rack(
        sim, streams,
        RackConfig(n_servers=4, cores_per_server=4, system="rss",
                   policy=policy, **config_kwargs),
    )
    return run_workload(
        rack, sim, streams,
        arrivals=PoissonArrivals(12e6),
        service=Exponential(1000.0),
        n_requests=6000,
        connections=ConnectionPool.skewed(512, zipf_s=1.2),
    )


class TestSteeringRegression:
    def test_power_of_two_beats_connection_hash_on_skewed_rack(self):
        """The tier's raison d'etre: load-aware inter-server steering
        bounds the rack tail where flow hashing cannot."""
        hashed = _run_policy("hash")
        p2c = _run_policy("power_of_d", d=2)
        # Hash pins the hot flows to one server: its p99 explodes while
        # power-of-2 keeps the rack near its aggregate capacity.  The
        # measured gap is ~19x; require 2x so the gate has headroom.
        assert p2c.latency.p99 < hashed.latency.p99 / 2.0
        assert (
            p2c.extra["cluster.imbalance_index"]
            < hashed.extra["cluster.imbalance_index"]
        )
        assert hashed.extra["cluster.imbalance_index"] > 1.2

    def test_rack_run_is_deterministic_for_a_fixed_seed(self):
        first = _run_policy("power_of_d", d=2)
        second = _run_policy("power_of_d", d=2)
        assert first.latency.p99 == second.latency.p99
        assert [r.finished for r in first.requests] == [
            r.finished for r in second.requests
        ]


class TestFigRackDeterminism:
    """The rack sweep behaves like every other experiment under the
    runner: bit-identical serial vs parallel, replayable from cache."""

    @pytest.fixture(autouse=True)
    def tiny_sweep(self, monkeypatch):
        from repro.experiments import fig_rack

        monkeypatch.setattr(fig_rack, "RACK_SHAPES", ((2, 4),))
        monkeypatch.setattr(fig_rack, "LOAD_FRACTIONS", (0.6,))
        monkeypatch.setattr(
            fig_rack, "POLICIES",
            (("hash", {"policy": "hash"}),
             ("power_of_2", {"policy": "power_of_d", "d": 2})),
        )

    def test_rows_identical_serial_vs_parallel_and_cached(self, tmp_path):
        from repro.experiments import fig_rack
        from repro.runner import get_config

        with overrides(jobs=1, use_cache=False):
            serial = fig_rack.run(scale=0.1)
        with overrides(jobs=4, use_cache=True, cache_dir=str(tmp_path)):
            parallel = fig_rack.run(scale=0.1)
        assert serial.rows == parallel.rows
        assert serial.series == parallel.series
        # Replay must be pure cache hits and still identical.
        with overrides(jobs=4, use_cache=True, cache_dir=str(tmp_path)):
            counters = get_config().counters
            before = counters.snapshot()
            replay = fig_rack.run(scale=0.1)
            sweep = counters.delta(before)
        assert replay.rows == serial.rows
        assert sweep.points == 2
        assert sweep.cache_hits == 2
        assert sweep.executed == 0
