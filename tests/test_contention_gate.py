"""Regression gates for the data-layer ownership claims.

Pinned behaviors (fixed seeds, so exact simulations -- the margins
below are generous against incidental perturbation, not noise):

* **Multiversion crossover.**  On the hot-key mix there is a
  skew/threshold region where CREW + multiversion reads beat
  EREW + Altocumulus migration on p99: migration evacuates clogged
  queues but every migrated request still serializes at the exclusive
  owner partition, while multiversion reads proceed against the last
  committed version (the fig_contention headline).
* **d-CREW interpolation.**  Bounded-concurrency admission waits fall
  monotonically from EREW's (d=1) through d=2 and d=4 toward CREW's
  (d=inf) on the same hot-key cell.
* **Threshold axis.**  Under EREW, aggressive migration (evacuate at
  queue length 2) beats lazy migration (nearly T_upper) -- moving work
  off scan-clogged groups helps even though the owner lock remains.
"""

from repro.api import quick_run, run_workload
from repro.experiments.fig_contention import (
    RATE_RPS,
    SCAN_FRACTION,
    contention_builder,
)
from repro.kvs.ownership import KvsSpec
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload import PoissonArrivals
from repro.workload.service import Fixed

N_REQUESTS = 4_000
SEED = 7


def _hot_key_cell(**spec_kwargs):
    """One scan-free hot-key cell on a 32-core Altocumulus server.

    Scan-free on purpose: 50-us SCAN lock holds would let a *rarer*
    scan draw under a tighter discipline dominate the mean wait and
    break the interpolation ordering; without them the ordering is a
    pure function of the admission discipline.
    """
    result = quick_run(
        system="altocumulus", n_cores=32, rate_rps=20e6,
        mean_service_ns=100.0, n_requests=N_REQUESTS, seed=SEED,
        kvs=KvsSpec(mix="hot_key", **spec_kwargs),
    )
    return result


def _mean_wait_ns(result) -> float:
    admissions = result.metrics["kvs.ownership.admissions"]
    assert admissions > 0
    return result.metrics["kvs.ownership.wait_ns"] / admissions


def _contention_p99(skew: float, threshold: float, **spec_kwargs) -> float:
    """One fig_contention cell (scan-contaminated, migration active)."""
    streams = RandomStreams(1)
    sim = Simulator()
    system = contention_builder(sim, streams, threshold=threshold)
    result = run_workload(
        system, sim, streams, PoissonArrivals(RATE_RPS), Fixed(100.0),
        n_requests=N_REQUESTS, warmup_fraction=0.1,
        kvs=KvsSpec(mix="hot_key", scan_fraction=SCAN_FRACTION,
                    hot_key_fraction=skew, **spec_kwargs),
    )
    return result.latency.p99


class TestMultiversionCrossoverGate:
    def test_crew_mv_beats_erew_migration_on_hot_keys(self):
        """The fig_contention headline cell: skew 0.5, aggressive
        migration.  Measured: EREW ~98 us vs CREW+mv ~0.14 us (700x);
        gate at 5x so only a real regression trips."""
        erew = _contention_p99(0.5, 2.0, mode="erew")
        mv = _contention_p99(0.5, 2.0, mode="crew", multiversion=True)
        assert mv * 5.0 < erew

    def test_crossover_holds_under_lazy_migration_too(self):
        """The region is wide: the same skew under near-T_upper lazy
        migration (measured EREW ~190 us) still crosses over."""
        erew = _contention_p99(0.5, 64.0, mode="erew")
        mv = _contention_p99(0.5, 64.0, mode="crew", multiversion=True)
        assert mv * 5.0 < erew

    def test_multiversion_machinery_is_live_in_the_winning_cell(self):
        """The win comes from stale reads, not from the contention
        having evaporated: the epoch tracker must have served stale
        reads and reclaimed retired versions."""
        result = _hot_key_cell(mode="crew", multiversion=True)
        assert result.metrics["kvs.ownership.stale_reads"] > 0
        assert result.metrics["kvs.ownership.reclaimed"] > 0


class TestDcrewInterpolationGate:
    def test_admission_waits_interpolate_monotonically(self):
        """Mean admission wait is monotone in the concurrency bound:
        CREW (d=inf) <= d-CREW(4) <= d-CREW(2) <= EREW (d=1).
        Measured means: 7.0 <= 7.4 <= 17.4 <= 157.2 ns."""
        erew = _mean_wait_ns(_hot_key_cell(mode="erew"))
        d2 = _mean_wait_ns(_hot_key_cell(mode="dcrew", d=2))
        d4 = _mean_wait_ns(_hot_key_cell(mode="dcrew", d=4))
        crew = _mean_wait_ns(_hot_key_cell(mode="crew"))
        assert crew <= d4 <= d2 <= erew
        # The endpoints are far apart (measured 22x): the ordering is
        # not a tie between near-equal values.
        assert erew > 5.0 * crew

    def test_crcw_is_the_zero_wait_floor(self):
        result = _hot_key_cell(mode="crcw")
        assert result.metrics["kvs.ownership.wait_ns"] == 0.0
        assert (result.metrics["kvs.ownership.read_waits"]
                + result.metrics["kvs.ownership.write_waits"]) == 0


class TestMigrationThresholdGate:
    def test_aggressive_migration_helps_erew_queues(self):
        """The threshold axis is live even though EREW loses overall:
        evacuating scan-clogged groups early (threshold 2) beats almost
        never evacuating (threshold 64).  Measured at skew 0:
        ~117 us vs ~191 us; gate at a 1.2x separation."""
        aggressive = _contention_p99(0.0, 2.0, mode="erew")
        lazy = _contention_p99(0.0, 64.0, mode="erew")
        assert lazy > 1.2 * aggressive
