"""Tests for the adaptive control plane (:mod:`repro.control`).

Covers the config/registry surface, the runtime-mutable knobs the
controllers actuate (steering staleness/width/cadence, health penalty,
worker counts), the admin-drain overlay, policy swaps with bound
instruments, worker reassignment, and the composition rules (ambient
config, sharded rejection, CLI validation, determinism).
"""

import dataclasses

import pytest

from repro.api import quick_run, run_workload
from repro.cluster.topology import RackConfig, build_rack
from repro.control import (
    CONTROLLER_NAMES,
    AdminHealthView,
    BanditController,
    ControlConfig,
    HysteresisController,
    StaticController,
    active_control_config,
    make_controller,
    use_controller,
)
from repro.control.actuators import MIN_SAMPLE_PERIOD_NS, Actuators
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.faults.health import HealthView
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.telemetry import MetricRegistry
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Exponential


def _rack(sim, streams, policy="power_of_d", n_servers=4, **kwargs):
    return build_rack(
        sim, streams,
        RackConfig(n_servers=n_servers, cores_per_server=4, system="rss",
                   policy=policy, **kwargs),
    )


def _run(system, sim, streams, n_requests=2000, rate_rps=10e6, **kwargs):
    return run_workload(
        system, sim, streams,
        arrivals=PoissonArrivals(rate_rps),
        service=Exponential(1000.0),
        n_requests=n_requests,
        **kwargs,
    )


class TestControlConfig:
    def test_defaults_validate(self):
        cfg = ControlConfig()
        assert cfg.controller == "static"

    @pytest.mark.parametrize("bad", [
        dict(controller="pid"),
        dict(epoch_ns=0.0),
        dict(epoch_ns=-5.0),
        dict(drain_after_epochs=0),
        dict(restore_after_epochs=0),
        dict(escalate_ratio=1.0, relax_ratio=1.1),
        dict(relax_ratio=0.0),
        dict(max_level=-1),
        dict(baseline_alpha=0.0),
        dict(explore=1.5),
        dict(reward_alpha=0.0),
        dict(relaxed_threshold_epsilon=-0.1),
        dict(swap_at_level=0),
        dict(autoscale_low=0.5, autoscale_high=0.5),
        dict(min_active=0),
        dict(rebalance_ratio=1.0),
        dict(rebalance_cooldown=0),
    ])
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ValueError):
            ControlConfig(**bad)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ControlConfig().controller = "bandit"


class TestControllerRegistry:
    def test_every_registered_name_constructs(self):
        rng = RandomStreams(1).get("control")
        types = {"static": StaticController,
                 "hysteresis": HysteresisController,
                 "bandit": BanditController}
        for name in CONTROLLER_NAMES:
            ctl = make_controller(ControlConfig(controller=name), rng)
            assert isinstance(ctl, types[name])
            assert ctl.name == name

    def test_unknown_name_raises(self):
        cfg = ControlConfig()
        object.__setattr__(cfg, "controller", "nope")
        with pytest.raises(ValueError, match="unknown controller"):
            make_controller(cfg, RandomStreams(1).get("control"))


class TestRuntimeKnobs:
    """The construction-frozen knobs the control plane made mutable."""

    def test_power_of_d_knobs_mutate_mid_run(self, sim, streams):
        rack = _rack(sim, streams, d=2, staleness_ns=2000.0)
        policy = rack.policy
        seen = {}

        def mutate():
            policy.set_d(4)
            policy.set_staleness(500.0)
            seen["at"] = sim.now

        sim.schedule(100_000.0, mutate)
        _run(rack, sim, streams)
        assert seen["at"] == 100_000.0
        assert policy.d == 4
        assert policy.staleness_ns == 500.0

    def test_set_d_validates_and_clamps(self, sim, streams):
        rack = _rack(sim, streams, d=2)
        with pytest.raises(ValueError):
            rack.policy.set_d(0)
        rack.policy.set_d(99)
        assert rack.policy.d == rack.policy.n_servers

    def test_shortest_wait_sample_period_mutates_mid_run(self, sim, streams):
        rack = _rack(sim, streams, policy="shortest_wait",
                     sample_period_ns=2000.0)
        policy = rack.policy
        before = {}

        def mutate():
            before["samples"] = policy.samples_taken
            policy.set_sample_period(400.0)

        sim.schedule(50_000.0, mutate)
        _run(rack, sim, streams)
        assert policy.sample_period_ns == 400.0
        # The re-armed timer keeps sampling at the faster cadence.
        assert policy.samples_taken > before["samples"]

    def test_health_penalty_mutates_mid_run(self):
        health = HealthView(4)
        health.add_degraded(1)
        baseline = health.penalty(1)
        assert baseline > 0
        health.set_degraded_penalty(baseline * 2)
        assert health.penalty(1) == baseline * 2
        with pytest.raises(ValueError):
            health.set_degraded_penalty(-1.0)
        health.remove_degraded(1)
        assert health.penalty(1) == 0.0

    def test_runtime_set_workers_recomputes_threshold(self, sim, streams):
        system = AltocumulusSystem(
            sim, streams, AltocumulusConfig(n_groups=2, group_size=4))
        runtime = system.runtimes[0]
        before = runtime.n_workers
        runtime.set_workers(before + 1)
        assert runtime.n_workers == before + 1
        with pytest.raises(ValueError):
            runtime.set_workers(0)


class TestAdminHealthView:
    def test_overlay_composes_with_inner_faults(self):
        inner = HealthView(3)
        admin = AdminHealthView(inner, 3)
        assert admin.usable_servers() == [0, 1, 2]
        assert admin.set_admin_down(1, True)
        assert not admin.set_admin_down(1, True)  # idempotent
        assert admin.usable_servers() == [0, 2]
        assert admin.impaired
        # Fault state passes through untouched.
        inner.add_degraded(0)
        assert admin.degraded(0)
        assert admin.penalty(0) == inner.penalty(0)
        inner.set_down(2, True)
        assert admin.usable_servers() == [0]
        assert admin.down(1) and admin.down(2)
        assert admin.set_admin_down(1, False)
        assert admin.n_admin_down == 0

    def test_out_of_range_unit_rejected(self):
        admin = AdminHealthView(HealthView(2), 2)
        with pytest.raises(ValueError):
            admin.set_admin_down(2, True)


class TestActuators:
    def _actuators(self, sim, streams, rack, config=None):
        return Actuators(sim, streams, rack,
                         config or ControlConfig(controller="hysteresis"),
                         rack.metrics)

    def test_apply_level_escalates_and_restores(self, sim, streams):
        rack = _rack(sim, streams, d=2, staleness_ns=2000.0)
        act = self._actuators(sim, streams, rack)
        assert act.apply_level(1)
        assert rack.policy.d == 3
        assert rack.policy.staleness_ns == 1000.0
        assert act.apply_level(0)
        assert rack.policy.d == 2
        assert rack.policy.staleness_ns == 2000.0
        assert not act.apply_level(0)  # no knob moved

    def test_apply_level_floors_sample_period(self, sim, streams):
        rack = _rack(sim, streams, policy="shortest_wait",
                     sample_period_ns=1000.0)
        cfg = ControlConfig(controller="hysteresis", max_level=3)
        act = self._actuators(sim, streams, rack, cfg)
        act.apply_level(3)
        assert rack.policy.sample_period_ns == MIN_SAMPLE_PERIOD_NS

    def test_drain_restore_lifecycle(self, sim, streams):
        rack = _rack(sim, streams)
        act = self._actuators(sim, streams, rack)
        assert act.drain(2)
        assert act.is_drained(2)
        assert act.active_units() == 3
        assert 2 not in rack.policy.health.usable_servers()
        assert not act.drain(2)  # already drained
        assert act.restore(2)
        assert act.active_units() == 4
        assert not act.restore(2)

    def test_drain_respects_min_active(self, sim, streams):
        rack = _rack(sim, streams, n_servers=2)
        cfg = ControlConfig(controller="hysteresis", min_active=1)
        act = self._actuators(sim, streams, rack, cfg)
        assert act.drain(0)
        assert not act.drain(1)  # would leave zero active units

    def test_swap_policy_preserves_bound_instruments(self, sim, streams):
        rack = _rack(sim, streams, d=2)
        act = self._actuators(sim, streams, rack)
        _run(rack, sim, streams, n_requests=500)
        before = rack.metrics.snapshot()
        assert before["cluster.steer_refreshes"] > 0
        assert act.base_policy_name == "power_of_d"
        assert act.swap_policy("shortest_wait")
        assert rack.policy.name == "shortest_wait"
        after = rack.metrics.snapshot()
        # Bound steer_* reads stay valid and monotonic across the swap.
        for key, value in before.items():
            if key.startswith("cluster.steer_"):
                assert after[key] >= value
        assert not act.swap_policy("shortest_wait")  # already active

    def test_swap_constructs_from_base_knobs(self, sim, streams):
        rack = _rack(sim, streams, d=2, staleness_ns=2000.0)
        act = self._actuators(sim, streams, rack)
        act.apply_level(2)  # escalate first
        act.swap_policy("shortest_wait")
        act.swap_policy("power_of_d")
        # The round-trip lands on construction knobs, not escalated ones.
        assert rack.policy.d == 2
        assert rack.policy.staleness_ns == 2000.0

    def test_swap_transplants_admin_overlay(self, sim, streams):
        rack = _rack(sim, streams)
        act = self._actuators(sim, streams, rack)
        act.drain(1)
        act.swap_policy("shortest_wait")
        assert isinstance(rack.policy.health, AdminHealthView)
        assert 1 not in rack.policy.health.usable_servers()


class TestWorkerReassignment:
    @pytest.fixture
    def system(self, sim, streams):
        return AltocumulusSystem(
            sim, streams, AltocumulusConfig(n_groups=2, group_size=4))

    def test_moves_idle_worker_and_updates_tables(self, system):
        assert system.reassign_worker(0, 1)
        assert len(system.occupancy[0]) == 2
        assert len(system.occupancy[1]) == 4
        assert len(system.local_wait[0]) == 2
        assert len(system.local_wait[1]) == 4
        # Core identity is conserved and the reverse maps track it.
        moved = system._worker_core(1, 3)
        assert system._group_of_core(moved.core_id) == 1
        assert system._worker_index(moved.core_id) == 3
        assert system.runtimes[0].n_workers == 2
        assert system.runtimes[1].n_workers == 4
        total = sum(len(occ) for occ in system.occupancy)
        assert total == 6  # conservation: 2 groups x 3 workers

    def test_refuses_last_worker(self, sim, streams):
        system = AltocumulusSystem(
            sim, streams, AltocumulusConfig(n_groups=2, group_size=2))
        assert not system.reassign_worker(0, 1)  # only worker left

    def test_refuses_busy_worker(self, system):
        from tests.conftest import make_request

        group, worker = 0, 2
        system.occupancy[group][worker] = 1  # pretend it's loaded
        assert not system.reassign_worker(0, 1)

    def test_validates_group_range(self, system):
        with pytest.raises(ValueError):
            system.reassign_worker(0, 2)
        with pytest.raises(ValueError):
            system.reassign_worker(-1, 1)
        with pytest.raises(ValueError):
            system.reassign_worker(1, 1)

    def test_group_outstanding_probe(self, system):
        groups = system.group_outstanding()
        assert groups == [0, 0]

    def test_system_still_runs_after_move(self, sim, streams):
        system = AltocumulusSystem(
            sim, streams, AltocumulusConfig(n_groups=2, group_size=4))
        assert system.reassign_worker(0, 1)
        result = _run(system, sim, streams, n_requests=1000, rate_rps=4e6)
        assert result.latency.count > 0
        assert result.dropped == 0


class TestControlLoopEndToEnd:
    _PLAN = FaultPlan(
        events=(
            FaultEvent(time_ns=50_000.0, kind="nic_drop", target=0,
                       magnitude=0.9, duration_ns=100_000.0),
        ),
        retry=RetryPolicy(timeout_ns=50_000.0, max_retries=3,
                          backoff_base_ns=20_000.0,
                          backoff_cap_ns=100_000.0, jitter=0.5),
    )

    def test_hysteresis_drains_lossy_server(self, sim, streams):
        rack = _rack(sim, streams)
        result = _run(
            rack, sim, streams, n_requests=4000, rate_rps=12e6,
            faults=self._PLAN,
            control=ControlConfig(controller="hysteresis",
                                  epoch_ns=10_000.0, drain_after_epochs=1),
        )
        assert result.metrics["control.epochs"] > 0
        assert result.metrics["control.drains"] >= 1
        assert result.metrics["control.restores"] >= 1
        assert result.metrics["control.drained_units"] == 0  # run ended clean

    def test_static_controller_matches_uncontrolled(self):
        plain = quick_run(system="rack", n_cores=16, rate_rps=10e6,
                          n_requests=1500, seed=3)
        controlled = quick_run(system="rack", n_cores=16, rate_rps=10e6,
                               n_requests=1500, seed=3,
                               control=ControlConfig(controller="static"))
        assert [r.finished for r in plain.requests] == [
            r.finished for r in controlled.requests
        ]
        assert plain.latency.p99 == controlled.latency.p99
        assert controlled.metrics["control.epochs"] > 0

    @pytest.mark.parametrize("controller", ["hysteresis", "bandit"])
    def test_adaptive_runs_are_self_deterministic(self, controller):
        kwargs = dict(system="rack", n_cores=16, rate_rps=12e6,
                      n_requests=1500, seed=5,
                      control=ControlConfig(controller=controller,
                                            epoch_ns=10_000.0))
        first = quick_run(**kwargs)
        second = quick_run(**kwargs)
        assert [r.finished for r in first.requests] == [
            r.finished for r in second.requests
        ]

    def test_ambient_use_controller(self):
        cfg = ControlConfig(controller="static")
        assert active_control_config() is None
        with use_controller(cfg):
            assert active_control_config() is cfg
            result = quick_run(system="rack", n_cores=16, rate_rps=8e6,
                               n_requests=500, seed=2)
            assert result.metrics["control.epochs"] > 0
        assert active_control_config() is None


class TestShardComposition:
    def test_quick_run_rejects_control_with_shards(self):
        with pytest.raises(ValueError, match="sharded"):
            quick_run(system="datacenter", shards=2, n_requests=100,
                      control=ControlConfig(controller="static"))

    def test_executor_rejects_control_with_shards(self):
        from repro.experiments.fig_datacenter import datacenter_builder
        from repro.runner import PointSpec, ref
        from repro.runner.executor import execute_point

        spec = PointSpec(
            builder=ref(datacenter_builder, mix="uniform"),
            service=Exponential(1000.0),
            rate_rps=1e6,
            n_requests=100,
            seed=1,
            shards=2,
            control=ControlConfig(controller="hysteresis"),
        )
        with pytest.raises(ValueError, match="shards"):
            execute_point(spec)


class TestCliValidation:
    def test_epoch_without_controller_rejected(self, capsys):
        from repro.experiments.cli import main

        assert main(["quickstart", "--control-epoch-ns", "5000"]) == 2
        assert "--control-epoch-ns requires --controller" in (
            capsys.readouterr().err
        )

    def test_controller_with_shards_rejected(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig_datacenter", "--controller", "static",
                     "--shards", "2"]) == 2
        assert "--controller is not supported with --shards" in (
            capsys.readouterr().err
        )

    def test_unknown_controller_rejected(self, capsys):
        from repro.experiments.cli import main

        assert main(["quickstart", "--controller", "pid"]) == 2
        assert "--controller must be one of" in capsys.readouterr().err
