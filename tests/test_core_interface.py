"""Unit tests for the software-hardware interface cost model."""

import pytest

from repro.core.interface import (
    BASE_ACCESSES_PER_TICK,
    PREDICTION_COMPUTE_NS,
    HwInterface,
)


class TestCosts:
    def test_isa_is_cycles_scale(self):
        isa = HwInterface.isa()
        assert isa.access_ns < 5.0

    def test_msr_is_100_cycles(self):
        msr = HwInterface.msr()
        assert msr.access_ns == 50.0  # 100 cycles @ 2 GHz

    def test_isa_much_cheaper_than_msr(self):
        assert HwInterface.isa().access_ns * 10 < HwInterface.msr().access_ns

    def test_prediction_compute_is_18ns(self):
        # Sec. VIII-E's worst-case arithmetic.
        assert PREDICTION_COMPUTE_NS == 18.0


class TestTickCost:
    def test_base_tick_without_migrations(self):
        isa = HwInterface.isa()
        expected = PREDICTION_COMPUTE_NS + BASE_ACCESSES_PER_TICK * isa.access_ns
        assert isa.tick_cost_ns(0) == pytest.approx(expected)

    def test_each_migrate_adds_one_send(self):
        isa = HwInterface.isa()
        assert isa.tick_cost_ns(3) - isa.tick_cost_ns(0) == pytest.approx(
            3 * isa.access_ns
        )

    def test_msr_pays_per_queue_read(self):
        msr = HwInterface.msr()
        base = msr.tick_cost_ns(0, queue_reads=0)
        wide = msr.tick_cost_ns(0, queue_reads=16)
        assert wide - base == pytest.approx(16 * msr.access_ns)

    def test_isa_vector_read_is_one_instruction(self):
        isa = HwInterface.isa()
        assert isa.tick_cost_ns(0, queue_reads=16) - isa.tick_cost_ns(0) == (
            pytest.approx(isa.access_ns)
        )

    def test_msr_tick_can_exceed_typical_period(self):
        """The Fig. 14 mechanism: a 16-group MSR tick costs more than
        the 200 ns default period, stretching the migration cadence."""
        msr = HwInterface.msr()
        assert msr.tick_cost_ns(3, queue_reads=16) > 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HwInterface.isa().tick_cost_ns(-1)
        with pytest.raises(ValueError):
            HwInterface.isa().tick_cost_ns(0, queue_reads=-1)
        with pytest.raises(ValueError):
            HwInterface.of("smoke-signals")

    def test_of_factory(self):
        assert HwInterface.of("isa").kind == "isa"
        assert HwInterface.of("msr").kind == "msr"
