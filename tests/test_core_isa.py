"""Unit tests for the executable Table III instruction set."""

import pytest

from repro.core.interface import HwInterface
from repro.core.isa import AltocumulusIsa, tick_instruction_budget
from repro.hw.messaging import ManagerTileHw
from repro.hw.noc import Noc
from repro.hw.topology import MeshTopology
from tests.conftest import make_request


@pytest.fixture
def tiles(sim):
    noc = Noc(sim, MeshTopology(32))
    tiles = [
        ManagerTileHw(sim, noc, tile_id=i * 16, manager_index=i)
        for i in range(2)
    ]
    for t in tiles:
        t.connect(tiles)
    return tiles


def make_isa(tiles, kind="isa"):
    return AltocumulusIsa(tiles[0], HwInterface.of(kind))


class TestInstructions:
    def test_status_reflects_queue(self, tiles):
        isa = make_isa(tiles)
        for i in range(3):
            tiles[0].mrs.enqueue(make_request(req_id=i))
        status = isa.altom_status()
        assert status.queue_len == 3
        assert status.tail == 3
        assert isa.log.counts["altom_status"] == 1

    def test_update_broadcasts(self, sim, tiles):
        isa = make_isa(tiles)
        isa.altom_update(9, n_managers=2)
        sim.run()
        assert tiles[0].stats.updates_sent == 1

    def test_predict_config_writes_prs(self, tiles):
        isa = make_isa(tiles)
        isa.altom_predict_config(bulk=40, period_ns=100.0)
        assert tiles[0].prs.bulk == 40
        assert tiles[0].prs.period_ns == 100.0

    def test_send_migrates(self, sim, tiles):
        isa = make_isa(tiles)
        batch = [make_request(req_id=1)]
        assert isa.altom_send(1, batch)
        sim.run()
        assert tiles[1].stats.descriptors_accepted == 1

    def test_trace_records_sequence(self, sim, tiles):
        isa = make_isa(tiles)
        isa.altom_status()
        isa.altom_update(0, 2)
        isa.altom_predict_config(bulk=8)
        assert [t.split()[0] for t in isa.log.trace] == [
            "altom_status", "altom_update", "altom_predict_config",
        ]


class TestCosts:
    def test_isa_vector_ops_are_single_issue(self, tiles):
        isa = make_isa(tiles, "isa")
        isa.altom_update(0, n_managers=16)
        assert isa.log.cycles_ns == pytest.approx(
            HwInterface.isa().access_ns
        )

    def test_msr_pays_per_register(self, tiles):
        msr = make_isa(tiles, "msr")
        msr.altom_update(0, n_managers=16)
        assert msr.log.cycles_ns == pytest.approx(
            16 * HwInterface.msr().access_ns
        )

    def test_read_queue_vector_costs(self, tiles):
        isa = make_isa(tiles, "isa")
        vec, cost = isa.read_queue_vector([1, 2, 3, 4])
        assert vec == [1, 2, 3, 4]
        assert cost == pytest.approx(HwInterface.isa().access_ns)

    def test_reset_window(self, tiles):
        isa = make_isa(tiles)
        isa.altom_status()
        first = isa.reset_window()
        assert first > 0
        assert isa.reset_window() == 0.0

    def test_budget_closed_form_msr_exceeds_isa(self):
        isa_cost = tick_instruction_budget(HwInterface.isa(), 16, 3)
        msr_cost = tick_instruction_budget(HwInterface.msr(), 16, 3)
        assert msr_cost > 10 * isa_cost
        # An MSR tick on a 16-group machine is period-scale by itself.
        assert msr_cost > 200.0
