"""Unit and property tests for queue-pattern classification (Sec. VI)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.patterns import (
    Pattern,
    classify_pattern,
    migrate_size,
    migration_plan,
)


class TestClassification:
    def test_hill(self):
        # Longest exceeds second-longest by more than Bulk.
        assert classify_pattern([30, 30, 70, 30], 16) is Pattern.HILL

    def test_walkthrough_example_is_hill(self):
        # Sec. VI walk-through: Bulk=40, q=[30,30,70,30] -> Hill.
        # (70 - 30 = 40 is not > 40, so use the paper's spirit with a
        # slightly deeper peak.)
        assert classify_pattern([30, 30, 75, 30], 40) is Pattern.HILL

    def test_valley(self):
        assert classify_pattern([50, 50, 50, 10], 16) is Pattern.VALLEY

    def test_pairing_gradual_slope(self):
        # No neighbouring gap exceeds Bulk (so neither Hill nor Valley),
        # but the overall spread does: gradual imbalance -> Pairing.
        q = [60, 50, 40, 30]
        assert classify_pattern(q, 16) is Pattern.PAIRING

    def test_hill_takes_precedence_over_gradient(self):
        # The paper's rules check Hill first: a peak more than Bulk above
        # the runner-up is a Hill even on an otherwise gradual slope.
        assert classify_pattern([80, 60, 40, 20], 16) is Pattern.HILL

    def test_balanced(self):
        assert classify_pattern([50, 52, 49, 51], 16) is Pattern.BALANCED

    def test_single_queue_is_balanced(self):
        assert classify_pattern([100], 16) is Pattern.BALANCED

    def test_invalid_bulk(self):
        with pytest.raises(ValueError):
            classify_pattern([1, 2], 0)


class TestMigrationPlan:
    def test_hill_peak_scatters_to_shortest(self):
        q = [30, 30, 70, 30]
        plan = migration_plan(q, self_index=2, bulk=16, concurrency=4)
        assert plan.pattern is Pattern.HILL
        assert set(plan.destinations) == {0, 1, 3}

    def test_hill_non_peak_does_nothing(self):
        q = [30, 30, 70, 30]
        plan = migration_plan(q, self_index=0, bulk=16, concurrency=4)
        assert plan.destinations == []

    def test_hill_concurrency_caps_destinations(self):
        q = [10, 10, 70, 10, 10]
        plan = migration_plan(q, self_index=2, bulk=16, concurrency=2)
        assert len(plan.destinations) == 2
        # The two shortest are preferred.
        assert set(plan.destinations) <= {0, 1, 3, 4}

    def test_valley_everyone_feeds_the_dip(self):
        q = [50, 50, 50, 10]
        for idx in (0, 1, 2):
            plan = migration_plan(q, self_index=idx, bulk=16, concurrency=4)
            assert plan.destinations == [3]
        assert migration_plan(q, 3, 16, 4).destinations == []

    def test_pairing_matches_ranks(self):
        q = [60, 50, 40, 30]
        assert migration_plan(q, 0, 16, 4).destinations == [3]
        assert migration_plan(q, 1, 16, 4).destinations == [2]
        # Bottom-half queues don't send.
        assert migration_plan(q, 3, 16, 4).destinations == []

    def test_threshold_breach_triggers_without_pattern(self):
        q = [50, 52, 49, 51]  # balanced
        plan = migration_plan(q, self_index=1, bulk=16, concurrency=2,
                              threshold=40.0)
        assert plan.destinations != []
        assert 1 not in plan.destinations

    def test_no_trigger_below_threshold_when_balanced(self):
        q = [50, 52, 49, 51]
        plan = migration_plan(q, 1, 16, 2, threshold=100.0)
        assert plan.destinations == []

    def test_validation(self):
        with pytest.raises(ValueError):
            migration_plan([1, 2], self_index=5, bulk=16, concurrency=1)
        with pytest.raises(ValueError):
            migration_plan([1, 2], 0, 16, 0)


class TestMigrateSize:
    def test_bulk_split_across_concurrency(self):
        assert migrate_size(40, 4) == 10  # walk-through example
        assert migrate_size(16, 8) == 2

    def test_at_least_one(self):
        assert migrate_size(4, 8) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            migrate_size(0, 1)


@settings(max_examples=150, deadline=None)
@given(
    q=st.lists(st.integers(0, 500), min_size=2, max_size=16),
    bulk=st.integers(1, 64),
    concurrency=st.integers(1, 8),
)
def test_plan_invariants(q, bulk, concurrency):
    """Properties of any plan: no self-destinations, destination count
    bounded by concurrency, and classification agrees across managers."""
    patterns = set()
    for idx in range(len(q)):
        plan = migration_plan(q, idx, bulk, concurrency)
        assert idx not in plan.destinations
        assert len(plan.destinations) <= max(concurrency, 1)
        assert len(set(plan.destinations)) == len(plan.destinations)
        patterns.add(classify_pattern(q, bulk))
    assert len(patterns) == 1  # all managers classify identically
