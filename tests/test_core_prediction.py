"""Unit and property tests for the Erlang-C prediction model (Sec. IV)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction import (
    DEFAULT_MODELS,
    ThresholdModel,
    calibrate_threshold_model,
    erlang_c,
    expected_queue_length,
    expected_wait,
    first_violation_threshold,
    upper_bound_threshold,
    variance_corrected_model,
)


class TestErlangC:
    def test_single_server_reduces_to_mm1(self):
        """C_1(A) = A for M/M/1 (probability the server is busy)."""
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_zero_load(self):
        assert erlang_c(16, 0.0) == 0.0
        assert expected_queue_length(16, 0.0) == 0.0

    def test_saturated_load(self):
        assert erlang_c(16, 16.0) == 1.0
        assert expected_queue_length(16, 16.0) == math.inf

    def test_probability_bounds(self):
        for k in (1, 4, 64):
            for frac in (0.1, 0.5, 0.9, 0.99):
                c = erlang_c(k, frac * k)
                assert 0.0 <= c <= 1.0

    def test_monotone_in_load(self):
        values = [erlang_c(16, a) for a in (4.0, 8.0, 12.0, 15.0)]
        assert values == sorted(values)

    def test_more_servers_less_queueing_at_same_utilization(self):
        """Pooling effect: at equal rho, larger k queues less."""
        assert erlang_c(64, 0.9 * 64) < erlang_c(4, 0.9 * 4)

    def test_mm1_queue_length_closed_form(self):
        """E[Nq] for M/M/1 is rho^2/(1-rho)."""
        rho = 0.8
        assert expected_queue_length(1, rho) == pytest.approx(
            rho * rho / (1 - rho)
        )

    def test_large_k_numerical_stability(self):
        # 256 servers must not overflow the factorial terms.
        value = erlang_c(256, 0.95 * 256)
        assert 0.0 < value < 1.0

    def test_expected_wait_littles_law(self):
        """W = E[Nq] / lambda."""
        k, load, s = 16, 14.0, 1000.0
        lam = load / s
        assert expected_wait(k, load, s) == pytest.approx(
            expected_queue_length(k, load) / lam
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(4, -1.0)
        with pytest.raises(ValueError):
            expected_wait(4, 2.0, 0.0)


class TestThresholdModel:
    def test_identity_model_returns_nq(self):
        model = ThresholdModel()
        assert model.threshold(16, 12.0) == pytest.approx(
            expected_queue_length(16, 12.0)
        )

    def test_affine_transformation(self):
        model = ThresholdModel(a=2.0, b=10.0, c=0.5, d=1.0)
        nq = expected_queue_length(16, 12.0)
        assert model.threshold(16, 12.0) == pytest.approx(2 * (0.5 * nq + 1) + 10)

    def test_fig7d_constants_registered(self):
        model = DEFAULT_MODELS["fixed"]
        assert (model.a, model.c) == (1.01, 0.998)
        assert (model.b, model.d) == (0.0, 0.0)

    def test_saturated_threshold_is_infinite(self):
        assert ThresholdModel().threshold(16, 16.0) == math.inf

    def test_upper_bound(self):
        # 64 cores, L=10: k*L+1 = 641 (the paper's worked number).
        assert upper_bound_threshold(64, 10.0) == 641.0
        with pytest.raises(ValueError):
            upper_bound_threshold(0, 10.0)

    def test_variance_correction(self):
        deterministic = variance_corrected_model(0.0)
        heavy = variance_corrected_model(4.0)
        assert deterministic.c == 0.5
        assert heavy.c == 2.5
        with pytest.raises(ValueError):
            variance_corrected_model(-1.0)


class TestCalibration:
    def test_recovers_exact_linear_relation(self):
        k = 64
        loads = [0.9 * k, 0.95 * k, 0.97 * k, 0.99 * k]
        truth = ThresholdModel(a=1.5, b=20.0)
        measured = [truth.threshold(k, a) for a in loads]
        fitted = calibrate_threshold_model(loads, measured, k)
        assert fitted.a == pytest.approx(1.5, rel=1e-6)
        assert fitted.b == pytest.approx(20.0, rel=1e-4)

    def test_handles_infinite_points(self):
        k = 4
        loads = [0.5 * k, 0.9 * k, k]  # last point saturates -> inf E[Nq]
        measured = [1.0, 5.0, 100.0]
        fitted = calibrate_threshold_model(loads, measured, k)
        assert math.isfinite(fitted.a)

    def test_validation(self):
        with pytest.raises(ValueError):
            calibrate_threshold_model([1.0], [1.0], 4)
        with pytest.raises(ValueError):
            calibrate_threshold_model([1.0, 2.0], [1.0], 4)


class TestFirstViolation:
    def test_minimum_violating_queue_length(self):
        qlens = [5, 100, 50, 200]
        violated = [False, True, True, True]
        t, count = first_violation_threshold(qlens, violated)
        assert (t, count) == (50.0, 3)

    def test_no_violations_gives_inf(self):
        t, count = first_violation_threshold([1, 2], [False, False])
        assert t == math.inf and count == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            first_violation_threshold([1], [True, False])


@settings(max_examples=80, deadline=None)
@given(k=st.integers(1, 128), frac=st.floats(0.01, 0.999))
def test_erlang_c_properties(k, frac):
    """Property: C_k is a probability and E[Nq] is finite & non-negative
    for any stable load."""
    load = frac * k
    c = erlang_c(k, load)
    nq = expected_queue_length(k, load)
    assert 0.0 <= c <= 1.0
    assert nq >= 0.0
    assert math.isfinite(nq)
