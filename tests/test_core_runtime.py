"""Unit tests for the manager runtime (Algorithm 1) against mock hooks."""

import pytest

from repro.core.config import AltocumulusConfig
from repro.core.interface import HwInterface
from repro.core.prediction import ThresholdModel
from repro.core.runtime import LoadEstimator, ManagerRuntime, RuntimeHooks
from tests.conftest import make_request


class MockSystem:
    """Scriptable hook implementation recording every runtime action."""

    def __init__(self, queue_len=0, batch_available=True, send_ok=True):
        self.queue_len = queue_len
        self.batch_available = batch_available
        self.send_ok = send_ok
        self.taken = []
        self.restored = []
        self.sent = []  # (dst, batch)
        self.updates = []
        self.charged = []
        self.flagged = []
        self._next_id = 0

    def hooks(self):
        return RuntimeHooks(
            local_queue_len=lambda: self.queue_len,
            take_batch=self._take,
            restore_batch=self.restored.append,
            send_migrate=self._send,
            broadcast_update=self.updates.append,
            charge=self.charged.append,
            flag_predicted=self.flagged.append,
        )

    def _take(self, size):
        if not self.batch_available:
            return []
        batch = [make_request(req_id=self._next_id + i) for i in range(size)]
        self._next_id += size
        self.taken.append(batch)
        return batch

    def _send(self, dst, batch):
        if self.send_ok:
            self.sent.append((dst, batch))
        return self.send_ok


def make_runtime(mock, n_groups=4, **config_kwargs):
    config = AltocumulusConfig(
        n_groups=n_groups, group_size=16,
        **{"period_ns": 200.0, "bulk": 16, "concurrency": 4, **config_kwargs},
    )
    return ManagerRuntime(
        group_index=0,
        n_groups=n_groups,
        config=config,
        hooks=mock.hooks(),
        interface=HwInterface.isa(),
    )


class TestLoadEstimator:
    def test_estimates_rate_and_service(self):
        est = LoadEstimator(alpha=0.5)
        for t in range(1, 101):
            est.record_arrival(t * 100.0)  # one arrival per 100 ns
            est.record_completion(50.0)
        # load = mean service / mean gap = 50/100 = 0.5 Erlangs
        assert est.load_erlangs() == pytest.approx(0.5, rel=0.05)

    def test_returns_none_before_warmup(self):
        est = LoadEstimator()
        assert est.load_erlangs() is None
        est.record_arrival(100.0)
        assert est.load_erlangs() is None

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            LoadEstimator(alpha=0.0)


class TestThresholdModes:
    def test_fixed_mode(self):
        mock = MockSystem()
        runtime = make_runtime(mock, threshold_mode="fixed",
                               fixed_threshold=42.0)
        assert runtime.current_threshold() == 42.0

    def test_upper_bound_mode(self):
        mock = MockSystem()
        runtime = make_runtime(mock, threshold_mode="upper_bound",
                               slo_multiplier=10.0)
        assert runtime.current_threshold() == 151.0  # 15 workers * 10 + 1

    def test_model_mode_with_known_load(self):
        mock = MockSystem()
        runtime = make_runtime(
            mock, threshold_mode="model", offered_load=0.9,
            threshold_model=ThresholdModel(),
        )
        t = runtime.current_threshold()
        assert 1.0 <= t <= 151.0

    def test_model_mode_unwarmed_estimator_is_conservative(self):
        mock = MockSystem()
        runtime = make_runtime(mock, threshold_mode="model")
        assert runtime.current_threshold() == 151.0  # falls back to upper

    def test_threshold_capped_at_upper_bound(self):
        mock = MockSystem()
        runtime = make_runtime(mock, threshold_mode="fixed",
                               fixed_threshold=1e9)
        assert runtime.current_threshold() == 151.0


class TestTick:
    def test_broadcasts_queue_length_every_tick(self):
        mock = MockSystem(queue_len=7)
        runtime = make_runtime(mock)
        runtime.tick()
        assert mock.updates == [7]
        assert runtime.q_view[0] == 7

    def test_hill_triggers_migrations(self):
        mock = MockSystem(queue_len=100)
        runtime = make_runtime(mock, threshold_mode="upper_bound")
        runtime.q_view = [100, 10, 10, 10]
        sent = runtime.tick()
        assert sent == 3
        assert {dst for dst, _ in mock.sent} == {1, 2, 3}
        # S = Bulk / Concurrency = 4 descriptors per message.
        assert all(len(batch) == 4 for _, batch in mock.sent)

    def test_line8_guard_blocks_pointless_moves(self):
        """Migration is forbidden when it would leave the migrated
        requests in an equally long (or longer) queue."""
        mock = MockSystem(queue_len=20)
        runtime = make_runtime(mock, threshold_mode="fixed",
                               fixed_threshold=5.0)
        runtime.q_view = [20, 19, 18, 17]  # everyone nearly equal
        sent = runtime.tick()
        assert sent == 0
        assert mock.sent == []

    def test_backpressure_restores_batch(self):
        mock = MockSystem(queue_len=100, send_ok=False)
        runtime = make_runtime(mock, threshold_mode="upper_bound")
        runtime.q_view = [100, 10, 10, 10]
        sent = runtime.tick()
        assert sent == 0
        assert len(mock.restored) == 1  # the taken batch went back

    def test_empty_queue_no_migration(self):
        mock = MockSystem(queue_len=0, batch_available=False)
        runtime = make_runtime(mock)
        runtime.q_view = [0, 0, 0, 0]
        assert runtime.tick() == 0

    def test_charge_called_every_tick(self):
        mock = MockSystem()
        runtime = make_runtime(mock)
        runtime.tick()
        runtime.tick()
        assert len(mock.charged) == 2
        assert all(c > 0 for c in mock.charged)

    def test_threshold_excess_flagged(self):
        mock = MockSystem(queue_len=60)
        runtime = make_runtime(mock, threshold_mode="fixed",
                               fixed_threshold=50.0)
        runtime.q_view = [60, 55, 58, 57]  # balanced-ish, all loaded
        runtime.tick()
        assert mock.flagged == [10]  # 60 - 50 beyond-threshold requests

    def test_update_handler_refreshes_view(self):
        mock = MockSystem()
        runtime = make_runtime(mock)
        runtime.on_update(2, 33)
        assert runtime.q_view[2] == 33
        with pytest.raises(ValueError):
            runtime.on_update(99, 1)

    def test_bookkeeping_counters(self):
        mock = MockSystem(queue_len=100)
        runtime = make_runtime(mock, threshold_mode="upper_bound")
        runtime.q_view = [100, 0, 0, 0]
        runtime.tick()
        assert runtime.ticks == 1
        assert runtime.migrations_triggered == 1
        assert runtime.descriptors_migrated == 12  # 3 dests x S=4


class TestLoadEstimatorEdgeCases:
    def test_zero_interarrival_gap_yields_no_estimate(self):
        # Simultaneous arrivals (a batch landing in one tick) drive the
        # EWMA gap to zero; the load is then undefined, not infinite.
        est = LoadEstimator(alpha=1.0)
        est.record_arrival(100.0)
        est.record_arrival(100.0)
        est.record_completion(50.0)
        assert est.load_erlangs() is None

    def test_single_gap_single_service_estimates_exactly(self):
        est = LoadEstimator()
        est.record_arrival(0.0)
        est.record_arrival(200.0)  # first (and only) gap sample: 200 ns
        est.record_completion(100.0)
        assert est.load_erlangs() == pytest.approx(100.0 / 200.0)

    def test_none_before_any_completion(self):
        est = LoadEstimator()
        est.record_arrival(0.0)
        est.record_arrival(100.0)  # gap known, service unknown
        assert est.load_erlangs() is None

    def test_none_before_any_gap(self):
        est = LoadEstimator()
        est.record_completion(100.0)  # service known, gap unknown
        est.record_arrival(0.0)  # first arrival: still no gap
        assert est.load_erlangs() is None

    def test_sample_counters_track_all_events(self):
        est = LoadEstimator()
        est.record_arrival(100.0)
        est.record_arrival(100.0)
        est.record_completion(10.0)
        assert est.arrivals == 2
        assert est.completions == 1
