"""Integration tests for the full Altocumulus system."""


from repro.api import run_workload
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Fixed
from tests.conftest import make_request


def make_system(sim, streams, n_groups=2, group_size=4, **kwargs):
    config = AltocumulusConfig(
        n_groups=n_groups,
        group_size=group_size,
        period_ns=kwargs.pop("period_ns", 200.0),
        bulk=kwargs.pop("bulk", 8),
        concurrency=kwargs.pop("concurrency", 1),
        **kwargs,
    )
    return AltocumulusSystem(sim, streams, config)


def run_system(system, sim, streams, n=300, rate_rps=2e6, service=None,
               connections=None):
    return run_workload(
        system, sim, streams,
        PoissonArrivals(rate_rps), service or Fixed(1_000.0),
        n_requests=n, warmup_fraction=0.0, connections=connections,
    )


class TestBasicOperation:
    def test_all_requests_complete_exactly_once(self, sim, streams):
        system = make_system(sim, streams)
        result = run_system(system, sim, streams, n=400)
        ids = [r.req_id for r in result.requests]
        assert len(ids) == len(set(ids)) == 400

    def test_managers_never_execute_requests(self, sim, streams):
        system = make_system(sim, streams)
        result = run_system(system, sim, streams)
        manager_core_ids = {g * 4 for g in range(2)}
        assert all(r.core_id not in manager_core_ids for r in result.requests)

    def test_worker_occupancy_respects_bound(self, sim, streams):
        system = make_system(sim, streams, worker_bound=2)
        run_system(system, sim, streams, rate_rps=8e6)
        # During the run occupancy never exceeded 2 (checked at end via
        # invariant: counters balanced back to zero).
        assert all(occ == 0 for group in system.occupancy for occ in [sum(group)])

    def test_single_group_runs_without_runtime(self, sim, streams):
        system = make_system(sim, streams, n_groups=1, group_size=8)
        result = run_system(system, sim, streams)
        assert len(result.requests) == 300
        assert system.total_migrated() == 0


class TestMigration:
    def test_imbalance_triggers_migrations(self, sim, streams):
        """All traffic hashed to one group: migration must spread it."""
        system = make_system(sim, streams, n_groups=2, group_size=4,
                             bulk=8, concurrency=1, offered_load=0.8)
        hot = ConnectionPool(1)  # a single connection -> one hot group
        result = run_system(system, sim, streams, n=600, rate_rps=4e6,
                            connections=hot)
        assert system.total_migrated() > 0
        groups_used = {r.group_id for r in result.requests}
        assert len(groups_used) == 2  # work executed in both groups

    def test_migrated_requests_marked(self, sim, streams):
        system = make_system(sim, streams, offered_load=0.8)
        result = run_system(system, sim, streams, n=600, rate_rps=4e6,
                            connections=ConnectionPool(1))
        migrated = [r for r in result.requests if r.migrations > 0]
        assert migrated
        assert all(r.no_migration_eta is not None for r in migrated)
        assert all(r.req_id in system.predicted_ids for r in migrated)

    def test_at_most_one_migration_by_default(self, sim, streams):
        system = make_system(sim, streams, n_groups=4, group_size=4,
                             concurrency=3, offered_load=0.9)
        result = run_system(system, sim, streams, n=800, rate_rps=6e6,
                            connections=ConnectionPool(1))
        assert all(r.migrations <= 1 for r in result.requests)

    def test_remigration_ablation_allows_extra_hops(self, sim, streams):
        system = make_system(sim, streams, n_groups=4, group_size=4,
                             concurrency=3, offered_load=0.9,
                             allow_remigration=True)
        result = run_system(system, sim, streams, n=800, rate_rps=6e6,
                            connections=ConnectionPool(1))
        # Conservation still holds even when requests bounce repeatedly.
        assert len(result.requests) == 800

    def test_runtime_disabled_never_migrates(self, sim, streams):
        system = make_system(sim, streams, runtime_enabled=False)
        run_system(system, sim, streams, n=400, rate_rps=4e6,
                   connections=ConnectionPool(1))
        assert system.total_migrated() == 0

    def test_migration_reduces_tail_under_imbalance(self, sim, streams):
        """The headline effect: with one hot group, migration cuts p99."""
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        def measure(runtime_enabled):
            sim2 = Simulator()
            streams2 = RandomStreams(77)
            system = make_system(sim2, streams2, n_groups=2, group_size=4,
                                 runtime_enabled=runtime_enabled,
                                 offered_load=0.9, bulk=8, concurrency=1)
            result = run_workload(
                system, sim2, streams2,
                # One connection: everything lands on one 3-worker group
                # at ~1.3x that group's capacity.
                DeterministicArrivals(4e6), Fixed(1_000.0),
                n_requests=1_000, warmup_fraction=0.1,
                connections=ConnectionPool(1),
            )
            return result.latency.p99

        assert measure(True) < measure(False) / 3


class TestVariants:
    def test_rss_variant_pays_pcie(self, sim, streams):
        system = make_system(sim, streams, variant="rss")
        result = run_system(system, sim, streams, n=100, rate_rps=1e5)
        # PCIe floor: >= 200 ns on top of service.
        assert result.latency.p50 > 1_200.0

    def test_int_variant_is_faster(self, sim, streams):
        system = make_system(sim, streams, variant="int")
        result = run_system(system, sim, streams, n=100, rate_rps=1e5)
        assert result.latency.p50 < 1_200.0

    def test_sw_dispatch_serializes_manager(self, sim, streams):
        """AC_rss software dispatch caps each group's throughput at the
        28.6 MRPS coherence-message ceiling."""
        system = make_system(sim, streams, n_groups=1, group_size=16,
                             variant="rss")
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(50e6),  # far above 28.6 MRPS
            Fixed(10.0),  # workers essentially free
            n_requests=3_000, warmup_fraction=0.5,
        )
        assert result.latency.p99 > 5_000.0  # dispatch backlog dominates

    def test_hw_dispatch_override_removes_ceiling(self, sim, streams):
        system = make_system(sim, streams, n_groups=1, group_size=16,
                             variant="rss", dispatch_mode="hw")
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(50e6), Fixed(10.0),
            n_requests=3_000, warmup_fraction=0.5,
        )
        assert result.latency.p99 < 5_000.0

    def test_msr_interface_stretches_tick_cadence(self, sim, streams):
        isa = make_system(sim, streams, n_groups=16, group_size=4,
                          interface="isa", period_ns=100.0, concurrency=3)
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams

        sim2, streams2 = Simulator(), RandomStreams(12345)
        msr = make_system(sim2, streams2, n_groups=16, group_size=4,
                          interface="msr", period_ns=100.0, concurrency=3)
        run_system(isa, sim, streams, n=500, rate_rps=5e6)
        run_system(msr, sim2, streams2, n=500, rate_rps=5e6)
        # MSR ticks cost > period, so fewer ticks fit in the same run.
        assert sum(rt.ticks for rt in msr.runtimes) < sum(
            rt.ticks for rt in isa.runtimes
        )

    def test_execution_penalty_applied(self, sim, streams):
        calls = []

        def penalty(request):
            calls.append(request.req_id)
            return 100.0

        config = AltocumulusConfig(n_groups=2, group_size=4)
        system = AltocumulusSystem(sim, streams, config,
                                   execution_penalty=penalty)
        result = run_system(system, sim, streams, n=50, rate_rps=1e5)
        assert len(calls) == 50
        assert result.latency.p50 > 1_100.0  # penalty visible in latency


class TestIntrospection:
    def test_netrx_lengths_shape(self, sim, streams):
        system = make_system(sim, streams, n_groups=3, group_size=4)
        assert system.netrx_lengths() == [0, 0, 0]

    def test_bounded_mr_drops_overflow(self, sim, streams):
        system = make_system(sim, streams, n_groups=2, group_size=4,
                             mr_capacity=4, runtime_enabled=False)
        for i in range(50):
            system.offer(make_request(req_id=i, service_time=100_000.0))
        system.expect(50)
        sim.run(until=10**12)
        assert system.stats.dropped > 0
        assert system.stats.completed + system.stats.dropped == 50

    def test_shutdown_stops_ticks(self, sim, streams):
        system = make_system(sim, streams)
        run_system(system, sim, streams, n=100)
        ticks_before = sum(rt.ticks for rt in system.runtimes)
        sim.run(until=sim.now + 10_000.0)
        assert sum(rt.ticks for rt in system.runtimes) == ticks_before
