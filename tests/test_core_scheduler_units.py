"""Focused unit tests for AltocumulusSystem internals."""

import pytest

from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from tests.conftest import make_request


@pytest.fixture
def system(sim, streams):
    config = AltocumulusConfig(n_groups=2, group_size=4, variant="int")
    return AltocumulusSystem(sim, streams, config)


class TestIndexArithmetic:
    def test_group_of_core(self, system):
        assert system._group_of_core(0) == 0
        assert system._group_of_core(3) == 0
        assert system._group_of_core(4) == 1
        assert system._group_of_core(7) == 1

    def test_worker_index_skips_manager(self, system):
        # Core 1 is worker 0 of group 0; core 5 is worker 0 of group 1.
        assert system._worker_index(1) == 0
        assert system._worker_index(3) == 2
        assert system._worker_index(5) == 0

    def test_worker_core_lookup(self, system):
        core = system._worker_core(1, 2)  # group 1, worker 2
        assert core.core_id == 4 + 1 + 2

    def test_least_occupied_prefers_lowest(self):
        assert AltocumulusSystem._least_occupied([2, 0, 1], 2) == 1
        assert AltocumulusSystem._least_occupied([2, 2, 2], 2) is None
        assert AltocumulusSystem._least_occupied([0, 0], 2) == 0  # tie: first


class TestDispatchDelay:
    def test_hw_dispatch_includes_tile_distance(self, system):
        near = system._dispatch_delay(0, 0)  # worker tile adjacent
        far = system._dispatch_delay(0, 2)  # further along the mesh
        assert near >= 20.0
        assert far >= near

    def test_sw_dispatch_serializes(self, sim, streams):
        config = AltocumulusConfig(n_groups=2, group_size=4, variant="rss")
        system = AltocumulusSystem(sim, streams, config)
        first = system._dispatch_delay(0, 0)
        second = system._dispatch_delay(0, 0)
        # Same instant: the second op waits for the first's 35 ns slot.
        assert second == pytest.approx(first + 35.0)

    def test_sw_dispatch_groups_independent(self, sim, streams):
        config = AltocumulusConfig(n_groups=2, group_size=4, variant="rss")
        system = AltocumulusSystem(sim, streams, config)
        system._dispatch_delay(0, 0)
        other_group = system._dispatch_delay(1, 0)
        assert other_group == pytest.approx(35.0)  # no cross-group queueing


class TestBatchSelection:
    def test_take_batch_stamps_counterfactual(self, system):
        mrs = system.managers[0].mrs
        for i in range(5):
            mrs.enqueue(make_request(req_id=i))
        system.estimators[0].record_completion(1_000.0)
        batch = system._take_batch(0, 2)
        assert len(batch) == 2
        assert all(r.no_migration_eta is not None for r in batch)
        assert all(r.req_id in system.predicted_ids for r in batch)
        # The newest requests were taken from the tail.
        assert [r.req_id for r in batch] == [3, 4]

    def test_take_batch_skips_migrated(self, system):
        mrs = system.managers[0].mrs
        for i in range(4):
            r = make_request(req_id=i)
            r.migrations = 1 if i >= 2 else 0
            mrs.enqueue(r)
        batch = system._take_batch(0, 2)
        assert [r.req_id for r in batch] == [0, 1]

    def test_remigration_config_lifts_filter(self, sim, streams):
        config = AltocumulusConfig(n_groups=2, group_size=4,
                                   allow_remigration=True)
        system = AltocumulusSystem(sim, streams, config)
        mrs = system.managers[0].mrs
        r = make_request(req_id=0)
        r.migrations = 3
        mrs.enqueue(r)
        assert system._take_batch(0, 1) == [r]

    def test_restore_batch_returns_requests(self, system):
        mrs = system.managers[0].mrs
        reqs = [make_request(req_id=i) for i in range(3)]
        for r in reqs:
            mrs.enqueue(r)
        batch = system._take_batch(0, 2)
        system._restore_batch(0, batch)
        assert len(mrs) == 3


class TestFlagging:
    def test_flag_predicted_marks_tail(self, system):
        mrs = system.managers[0].mrs
        for i in range(6):
            mrs.enqueue(make_request(req_id=i))
        system._flag_predicted(0, 2)
        assert {4, 5} <= system.predicted_ids
        assert 0 not in system.predicted_ids


class TestNaming:
    def test_system_name_encodes_variant_and_interface(self, sim, streams):
        config = AltocumulusConfig(n_groups=2, group_size=4, variant="rss",
                                   interface="msr")
        system = AltocumulusSystem(sim, streams, config)
        assert system.name == "ac_rss_msr"
