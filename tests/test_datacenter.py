"""Datacenter-tier behavior tests: hand-computed spine arithmetic,
fabric-wide conservation, the inter-rack steering regression the tier
exists to show, per-tenant SLO accounting, spine/rack fault interop,
and sweep determinism of the fig_datacenter experiment."""

import pytest

from repro.api import quick_run, run_workload
from repro.cluster.topology import RackConfig
from repro.datacenter.spine import SpineSwitch
from repro.datacenter.topology import DatacenterConfig, build_topology
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.runner import overrides
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.request import Request
from repro.workload.service import Exponential
from repro.workload.tenants import (
    TenantClass,
    TenantConnectionPool,
    TenantMix,
    tenant_slo_summary,
)


def _request(req_id, connection=0, arrival=0.0, finished=None, size=300):
    r = Request(req_id=req_id, arrival=arrival, service_time=100.0,
                size_bytes=size, connection=connection)
    r.finished = finished
    return r


class TestSpineArithmetic:
    """Hand-computed store-and-forward timing of the spine stage."""

    def test_serialization_queueing_and_forward_latency(self):
        # 400 Gb/s, one link: a 300 B request serializes in
        # 300 * 8 / 400 = 6 ns; the pipeline adds 500 ns flat.
        sim = Simulator()
        spine = SpineSwitch(sim, n_ports=2, bandwidth_gbps=400.0,
                            forward_latency_ns=500.0)
        delivered = []
        deliver = lambda r: delivered.append((r.req_id, sim.now))  # noqa: E731

        # Round-robin over 2 ports at t=0: ports 0, 1, then 0 again.
        for i, port in enumerate((0, 1, 0)):
            assert spine.forward(_request(i), port, deliver)
        sim.run(until=10_000.0)

        # Requests 0 and 1 hit idle ports: 6 + 500 = 506 ns.  Request 2
        # serializes behind request 0 (starts at 6): 12 + 500 = 512 ns.
        assert delivered == [(0, 506.0), (1, 506.0), (2, 512.0)]
        assert spine.forwarded == 3
        assert spine.dropped == 0
        # Only request 2 waited, exactly one serialization time.
        assert spine.queue_wait_ns == 6.0

    def test_spine_links_multiply_port_bandwidth(self):
        sim = Simulator()
        spine = SpineSwitch(sim, n_ports=1, bandwidth_gbps=400.0,
                            forward_latency_ns=500.0, spine_links=4)
        assert spine.link_bandwidth_gbps == 400.0
        assert spine.serialization_ns(300) == pytest.approx(1.5)  # 6 / 4

    def test_full_port_tail_drops(self):
        sim = Simulator()
        dropped = []
        spine = SpineSwitch(sim, n_ports=1, port_queue_depth=2,
                            on_drop=lambda r, p: dropped.append(r.req_id))
        sink = []
        for i in range(3):
            spine.forward(_request(i), 0, sink.append)
        assert dropped == [2]
        assert spine.dropped_per_port == [1]


class TestFabricConservation:
    """A hand-sized 2-rack x 2-server fabric conserves every request and
    charges every hop's latency."""

    def _run(self, n_requests=2000, tenants=()):
        sim = Simulator()
        streams = RandomStreams(5)
        config = DatacenterConfig(
            n_racks=2,
            rack=RackConfig(n_servers=2, cores_per_server=2, system="rss",
                            policy="round_robin"),
            policy="round_robin",
            tenants=tenants,
        )
        dc = build_topology(sim, streams, config)
        result = run_workload(
            dc, sim, streams,
            arrivals=PoissonArrivals(4e6),  # 50% of 8 MRPS capacity
            service=Exponential(1000.0),
            n_requests=n_requests,
        )
        return dc, result

    def test_every_request_reaches_exactly_one_terminal(self):
        dc, result = self._run()
        assert dc.stats.offered == 2000
        assert dc.stats.completed + dc.stats.dropped == dc.stats.offered
        # Nothing lost inside the fabric: everything offered crossed the
        # spine, landed in some rack, and terminated there.
        assert dc.spine.forwarded == dc.stats.offered
        assert dc.spine.partition_dropped == 0
        assert sum(r.stats.offered for r in dc.racks) == dc.spine.forwarded
        assert sum(r.stats.completed for r in dc.racks) == dc.stats.completed

    def test_round_robin_splits_racks_evenly(self):
        dc, _ = self._run()
        offered = [r.stats.offered for r in dc.racks]
        assert offered == [1000, 1000]

    def test_latency_includes_both_fabric_hops(self):
        dc, result = self._run()
        # Lower bound on any completed request: spine serialization +
        # spine pipeline + ToR serialization + ToR pipeline + service.
        spine_hop = dc.spine.serialization_ns(300) + dc.spine.forward_latency_ns
        tor = dc.racks[0].switch
        tor_hop = tor.serialization_ns(300) + tor.forward_latency_ns
        floor = spine_hop + tor_hop
        assert all(r.latency > floor for r in result.requests)

    def test_hierarchical_metrics_namespaces(self):
        dc, result = self._run()
        assert result.metrics["datacenter.spine.forwarded"] == 2000
        assert result.metrics["datacenter.imbalance_index"] >= 1.0
        # Per-rack registries are attached as children: rack<i>.srv<j>.*
        assert result.metrics["rack0.cluster.switch.forwarded"] == 1000
        assert result.metrics["rack1.srv0.system.offered"] > 0
        assert result.extra["datacenter.imbalance_index"] == pytest.approx(
            result.metrics["datacenter.imbalance_index"]
        )


#: The skewed tenant mix the steering regression drives: the hot tenant
#: keeps 64 connections at high Zipf skew, so flow hashing concentrates
#: most of the fabric's load on whichever racks those flows hash to.
_SKEWED_TENANTS = (
    TenantClass("hot", 0.6, slo_ns=10_000.0, zipf_s=1.3, n_connections=64),
    TenantClass("cold", 0.4, slo_ns=10_000.0, n_connections=4096),
)


def _run_policy(policy, seed=3, **config_kwargs):
    """A skewed, highly loaded 4-rack fabric under one inter-rack policy."""
    sim = Simulator()
    streams = RandomStreams(seed)
    dc = build_topology(
        sim, streams,
        DatacenterConfig(
            n_racks=4,
            rack=RackConfig(n_servers=2, cores_per_server=2, system="rss",
                            policy="power_of_d", d=2),
            policy=policy,
            tenants=_SKEWED_TENANTS,
            **config_kwargs,
        ),
    )
    return run_workload(
        dc, sim, streams,
        arrivals=PoissonArrivals(11.2e6),  # 70% of 16 MRPS capacity
        service=Exponential(1000.0),
        n_requests=6000,
        connections=TenantConnectionPool(TenantMix(_SKEWED_TENANTS)),
    )


class TestInterRackSteeringRegression:
    def test_power_of_two_beats_connection_hash_across_racks(self):
        """The tier's raison d'etre, one level up from the rack: even
        with load-aware steering *inside* every rack, hashing *across*
        racks pins the hot tenant's flows and the fabric tail explodes."""
        hashed = _run_policy("hash")
        p2c = _run_policy("power_of_d", d=2)
        assert p2c.latency.p99 < hashed.latency.p99 / 2.0
        assert (
            p2c.extra["datacenter.imbalance_index"]
            < hashed.extra["datacenter.imbalance_index"]
        )
        assert hashed.extra["datacenter.imbalance_index"] > 1.2
        # The imbalance is what costs the hot tenant its SLO.
        assert (
            p2c.extra["tenant.hot.attainment"]
            > hashed.extra["tenant.hot.attainment"]
        )

    def test_datacenter_run_is_deterministic_for_a_fixed_seed(self):
        first = _run_policy("shortest_wait")
        second = _run_policy("shortest_wait")
        assert first.latency.p99 == second.latency.p99
        assert [r.finished for r in first.requests] == [
            r.finished for r in second.requests
        ]


class TestTenantSloAccounting:
    def test_summary_arithmetic_on_fabricated_requests(self):
        mix = TenantMix((
            TenantClass("a", 0.4, slo_ns=1000.0, n_connections=4),
            TenantClass("b", 0.4, slo_ns=2000.0, n_connections=4),
            TenantClass("idle", 0.2, slo_ns=1000.0, n_connections=4),
        ))
        requests = [
            _request(0, connection=0, finished=500.0),     # a: met
            _request(1, connection=3, finished=1000.0),    # a: met (at SLO)
            _request(2, connection=1, finished=1500.0),    # a: missed
            _request(3, connection=5, finished=1500.0),    # b: met
            _request(4, connection=6, finished=None),      # unfinished
        ]
        summary = tenant_slo_summary(requests, mix)
        assert summary["a"]["completed"] == 3
        assert summary["a"]["slo_met"] == 2
        assert summary["a"]["attainment"] == pytest.approx(2 / 3)
        assert summary["b"] == {
            "completed": 1, "slo_met": 1, "attainment": 1.0,
            "p50_ns": 1500.0, "p99_ns": 1500.0,
        }
        # An idle tenant has no violations, so attainment is 1.0.
        assert summary["idle"]["completed"] == 0
        assert summary["idle"]["attainment"] == 1.0

    def test_live_accounting_matches_post_hoc_summary(self):
        """The datacenter's completion-path counters (the tenant.*
        instruments) must agree with the post-hoc request-set summary."""
        sim = Simulator()
        streams = RandomStreams(9)
        dc = build_topology(sim, streams, DatacenterConfig(
            n_racks=2,
            rack=RackConfig(n_servers=2, cores_per_server=2, system="rss"),
            policy="round_robin",
            tenants=_SKEWED_TENANTS,
        ))
        run_workload(
            dc, sim, streams,
            arrivals=PoissonArrivals(4e6),
            service=Exponential(1000.0),
            n_requests=2000,
            connections=TenantConnectionPool(TenantMix(_SKEWED_TENANTS)),
        )
        summary = tenant_slo_summary(dc.finished_requests, dc.tenant_mix)
        for i, tenant in enumerate(dc.tenant_mix.tenants):
            assert dc.tenant_completed[i] == summary[tenant.name]["completed"]
            assert dc.tenant_slo_met[i] == summary[tenant.name]["slo_met"]
        assert sum(dc.tenant_completed) == dc.stats.completed

    def test_pool_sampling_is_chunk_invariant(self):
        """Batched connection draws must be bit-identical to scalar
        draws -- the generator prefetch contract."""
        import numpy as np

        pool = TenantConnectionPool(TenantMix(_SKEWED_TENANTS))
        batched = pool.sample_many(np.random.default_rng(42), 100)
        scalar_rng = np.random.default_rng(42)
        scalar = [pool.sample(scalar_rng) for _ in range(100)]
        assert batched == scalar


_FAULT_RETRY = RetryPolicy(timeout_ns=50_000.0, max_retries=3,
                           backoff_base_ns=20_000.0)


def _faulted_run(system, events, **params):
    plan = FaultPlan(events=events, retry=_FAULT_RETRY)
    defaults = dict(n_cores=16, rate_rps=8e6, mean_service_ns=1000.0,
                    n_requests=4000, seed=11)
    defaults.update(params)
    return quick_run(system=system, faults=plan, **defaults)


class TestSpineFaults:
    def test_spine_kinds_fire_against_the_datacenter(self):
        result = _faulted_run("datacenter", (
            FaultEvent(time_ns=50_000.0, kind="spine_degrade", target=0,
                       magnitude=0.25, duration_ns=100_000.0),
            FaultEvent(time_ns=80_000.0, kind="spine_partition", target=1,
                       duration_ns=60_000.0),
        ))
        inst = result.metrics
        assert inst["faults.spine_degrades"] == 1
        assert inst["faults.spine_partitions"] == 1
        assert inst["faults.events_fired"] == 4  # both starts + both stops
        assert inst["faults.events_skipped"] == 0
        # The default datacenter steers with health-aware shortest_wait,
        # so it stops sending into the partitioned port immediately --
        # at most a handful of in-transit requests can blackhole.
        assert inst["faults.partition_dropped"] <= 5
        # Conservation still holds: every logical request reached a
        # verdict through the retrying client.
        assert inst["client.retry.succeeded"] + inst[
            "client.retry.failed"] == 4000

    def test_spine_partition_blackholes_under_hash_steering(self):
        """Hash steering has no health feedback, so it keeps forwarding
        into the partitioned port; those losses are silent in-fabric
        drops the retrying client must recover."""
        sim = Simulator()
        streams = RandomStreams(11)
        dc = build_topology(sim, streams, DatacenterConfig(
            n_racks=2,
            rack=RackConfig(n_servers=2, cores_per_server=2, system="rss"),
            policy="hash",
        ))
        plan = FaultPlan(
            events=(FaultEvent(time_ns=80_000.0, kind="spine_partition",
                               target=1, duration_ns=100_000.0),),
            retry=_FAULT_RETRY,
        )
        result = run_workload(
            dc, sim, streams,
            arrivals=PoissonArrivals(4e6),
            service=Exponential(1000.0),
            n_requests=4000,
            faults=plan,
        )
        inst = result.metrics
        assert inst["faults.spine_partitions"] == 1
        assert inst["faults.partition_dropped"] > 50
        assert dc.spine.partition_dropped == inst["faults.partition_dropped"]
        # Silent losses never surface as switch tail-drops or rack
        # terminals; the client's timeouts absorb them.
        assert dc.spine.dropped == 0
        assert inst["client.retry.succeeded"] + inst[
            "client.retry.failed"] == 4000

    def test_spine_kinds_skip_against_a_single_server(self):
        result = _faulted_run("altocumulus", (
            FaultEvent(time_ns=50_000.0, kind="spine_degrade", target=0,
                       magnitude=0.25, duration_ns=50_000.0),
        ))
        assert result.metrics["faults.spine_degrades"] == 0
        assert result.metrics["faults.events_fired"] == 0
        assert result.metrics["faults.events_skipped"] == 2

    def test_tor_kinds_skip_against_the_datacenter(self):
        """ToR kinds address a rack's switch, which the fabric does not
        expose as ``switch``; they are structurally inapplicable here."""
        result = _faulted_run("datacenter", (
            FaultEvent(time_ns=50_000.0, kind="tor_degrade", target=0,
                       magnitude=0.25, duration_ns=50_000.0),
        ))
        assert result.metrics["faults.tor_degrades"] == 0
        assert result.metrics["faults.events_skipped"] == 2

    def test_rack_loss_is_routed_around(self):
        """At this tier ``server_crash`` downs a whole rack; the
        health-aware inter-rack policy steers the survivors."""
        result = _faulted_run("datacenter", (
            FaultEvent(time_ns=40_000.0, kind="server_crash", target=1,
                       duration_ns=80_000.0),
        ))
        inst = result.metrics
        assert inst["faults.server_crashes"] == 1
        assert inst["faults.server_recoveries"] == 1
        assert inst["client.retry.succeeded"] + inst[
            "client.retry.failed"] == 4000
        # The default datacenter steers with shortest_wait, which is
        # health-aware: only requests already in flight toward the dead
        # rack at crash time can be lost to the blackhole.
        assert inst["faults.requests_blackholed"] < 50


class TestQuickRunIntegration:
    def test_quick_run_datacenter_end_to_end(self):
        result = quick_run(system="datacenter", n_cores=16, rate_rps=8e6,
                           n_requests=3000, seed=2)
        assert result.system_name.startswith("datacenter[2x2x")
        assert result.latency.count > 0
        assert result.metrics["datacenter.spine.forwarded"] == 3000
        assert 0 < result.utilization < 1

    def test_indivisible_core_counts_degrade_to_one_rack(self):
        result = quick_run(system="datacenter", n_cores=6, rate_rps=2e6,
                           n_requests=500, seed=2)
        assert result.system_name.startswith("datacenter[1x1x")


class TestFigDatacenterDeterminism:
    """The fabric sweep behaves like every other experiment under the
    runner: bit-identical serial vs parallel, replayable from cache."""

    @pytest.fixture(autouse=True)
    def tiny_sweep(self, monkeypatch):
        from repro.experiments import fig_datacenter

        monkeypatch.setattr(
            fig_datacenter, "POLICIES",
            (("hash", {"policy": "hash"}),
             ("power_of_2", {"policy": "power_of_d", "d": 2})),
        )
        monkeypatch.setattr(
            fig_datacenter, "TENANT_MIXES",
            {"skewed": fig_datacenter.TENANT_MIXES["skewed"]},
        )

    def test_rows_identical_serial_vs_parallel_and_cached(self, tmp_path):
        from repro.experiments import fig_datacenter
        from repro.runner import get_config

        with overrides(jobs=1, use_cache=False):
            serial = fig_datacenter.run(scale=0.1)
        with overrides(jobs=4, use_cache=True, cache_dir=str(tmp_path)):
            parallel = fig_datacenter.run(scale=0.1)
        assert serial.rows == parallel.rows
        assert serial.series == parallel.series
        # Replay must be pure cache hits and still identical.
        with overrides(jobs=4, use_cache=True, cache_dir=str(tmp_path)):
            counters = get_config().counters
            before = counters.snapshot()
            replay = fig_datacenter.run(scale=0.1)
            sweep = counters.delta(before)
        assert replay.rows == serial.rows
        assert sweep.points == 2
        assert sweep.cache_hits == 2
        assert sweep.executed == 0
