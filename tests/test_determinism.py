"""Golden-output determinism gate for the optimized simulation engine.

``tests/data/determinism_golden.json`` was captured from the engine
*before* the fast-path rework (event free-list, timer reuse, memoized
Erlang-C, threshold caching, batched RNG prefetch, slotted records).
The optimizations claim zero observable behavior change, so the current
engine must reproduce those fingerprints exactly: bit-identical
per-request timestamps, migration/steal counts, core/group placement,
and latency percentiles for every scheduler system.

If an intentional semantic change ever invalidates the goldens,
regenerate them with::

    PYTHONPATH=src python -c "
    import json
    from tests.determinism_util import all_fingerprints
    print(json.dumps(all_fingerprints(), indent=2))
    " > tests/data/determinism_golden.json

and say so loudly in the commit message -- a silent regeneration defeats
the whole gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from tests.determinism_util import ALL_GOLDEN_SYSTEMS, run_fingerprint

GOLDEN_PATH = Path(__file__).parent / "data" / "determinism_golden.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("system", ALL_GOLDEN_SYSTEMS)
def test_bit_identical_to_pre_optimization_engine(system, golden):
    current = run_fingerprint(system)
    expected = golden[system]
    # Compare the request digest last: the scalar fields give a readable
    # failure (which percentile moved) before the opaque hash does.
    for key in expected:
        if key == "requests_sha256":
            continue
        assert current[key] == expected[key], f"{system}: field {key!r} diverged"
    assert current["requests_sha256"] == expected["requests_sha256"], (
        f"{system}: per-request timestamps diverged from the "
        "pre-optimization engine"
    )


def test_optimized_engine_is_self_deterministic():
    """Two back-to-back runs of the optimized engine are bit-identical."""
    first = run_fingerprint("altocumulus")
    second = run_fingerprint("altocumulus")
    assert first == second


def test_faulted_run_is_self_deterministic():
    """Fault injection (retry jitter, drop coin flips, failover) draws
    only from its dedicated streams, so faulted runs are bit-reproducible
    too."""
    first = run_fingerprint("rack+faults")
    second = run_fingerprint("rack+faults")
    assert first == second


def test_static_controller_golden_matches_uncontrolled():
    """Attaching the do-nothing static controller adds epoch timers but
    must not perturb a single event: its golden entry equals the plain
    entry field-for-field."""
    import json

    golden = json.loads(GOLDEN_PATH.read_text())
    assert golden["rack+ctl:static"] == golden["rack"]


def test_controlled_run_is_self_deterministic():
    """An actuating controller (drains, knob pushes, policy swaps under
    faults) draws only from the dedicated "control" stream, so
    controlled runs are bit-reproducible too."""
    first = run_fingerprint("rack+faults+ctl:hysteresis")
    second = run_fingerprint("rack+faults+ctl:hysteresis")
    assert first == second
