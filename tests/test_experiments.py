"""Smoke tests for the experiment harness: every figure/table runs at a
tiny scale and produces sane structured output."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    SweepPoint,
    scaled,
    throughput_at_slo,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentInfo,
    experiment_description,
    get_experiment,
    list_experiments,
)

#: Tiny-scale smoke runs; heavier experiments are exercised by the
#: benchmark suite with real budgets.
FAST_EXPERIMENTS = ["tab1", "fig01"]


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert list_experiments() == [
            "quickstart",
            "fig01", "fig03", "tab1", "fig07", "fig09",
            "fig10", "fig11", "fig12", "fig13", "fig14",
            "tab2_tab3", "ablations", "validation", "fig_rack",
            "fig_chaos", "fig_datacenter", "fig_adaptive", "fig_fanout",
            "fig_contention",
        ]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_every_experiment_resolves_to_runnable(self):
        for exp_id in list_experiments():
            assert callable(get_experiment(exp_id))

    def test_every_experiment_has_a_description(self):
        for exp_id in list_experiments():
            assert experiment_description(exp_id).strip()

    def test_description_of_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            experiment_description("fig99")

    def test_blank_description_rejected_at_registration(self):
        with pytest.raises(ValueError, match="description"):
            ExperimentInfo("repro.experiments.fig01_stack_latency", "   ")

    def test_registry_modules_are_importable_paths(self):
        for exp_id, info in EXPERIMENTS.items():
            assert info.module.startswith("repro.experiments."), exp_id

    def test_every_registered_id_resolves_via_the_cli(self):
        from repro.experiments.cli import resolve_ids

        for exp_id in list_experiments():
            assert resolve_ids(exp_id) == [exp_id]

    def test_cli_all_expands_to_every_id(self):
        from repro.experiments.cli import resolve_ids

        assert resolve_ids("all") == list_experiments()

    def test_cli_aliases_resolve(self):
        from repro.experiments.cli import ALIASES, resolve_ids

        assert resolve_ids("rack") == ["fig_rack"]
        assert resolve_ids("chaos") == ["fig_chaos"]
        assert resolve_ids("datacenter") == ["fig_datacenter"]
        for alias, exp_id in ALIASES.items():
            assert resolve_ids(alias) == [exp_id]

    def test_cli_every_alias_targets_a_registered_id(self):
        from repro.experiments.cli import ALIASES

        for exp_id in ALIASES.values():
            assert exp_id in list_experiments()

    def test_cli_unknown_id_raises_cleanly(self):
        from repro.experiments.cli import ALIASES, UnknownExperimentError, resolve_ids

        with pytest.raises(UnknownExperimentError, match="fig99"):
            resolve_ids("fig99")
        # The error text advertises the aliases alongside the ids.
        try:
            resolve_ids("fig99")
        except UnknownExperimentError as exc:
            for alias in ALIASES:
                assert alias in str(exc)


class TestRuns:
    @pytest.mark.parametrize("exp_id", FAST_EXPERIMENTS)
    def test_fast_experiments_produce_tables(self, exp_id):
        result = get_experiment(exp_id)(scale=0.05)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        table = result.table()
        assert result.exp_id in table
        for header in result.headers:
            assert header in table

    def test_save_writes_file(self, tmp_path):
        result = get_experiment("tab1")()
        path = result.save(str(tmp_path))
        with open(path) as handle:
            assert "tab1" in handle.read()

    def test_fig01_scheduling_share_grows_as_stacks_shrink(self):
        result = get_experiment("fig01")(scale=0.05)
        shares = [row[4] for row in result.rows]
        assert shares == sorted(shares)  # tcpip < erpc < nanorpc


class TestHelpers:
    def test_scaled_clamps_to_minimum(self):
        assert scaled(10_000, 0.001) == 2_000
        assert scaled(10_000, 2.0) == 20_000
        with pytest.raises(ValueError):
            scaled(10_000, 0.0)

    def test_throughput_at_slo_picks_largest_passing(self):
        points = [
            SweepPoint(1e6, 100.0, 50.0, 1e6, 0.0),
            SweepPoint(2e6, 200.0, 60.0, 2e6, 0.0),
            SweepPoint(3e6, 9_999.0, 70.0, 3e6, 0.5),
        ]
        assert throughput_at_slo(points, 1_000.0) == 2e6
        assert throughput_at_slo(points, 1.0) == 0.0


class TestCli:
    def test_list_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list", "tab1"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out

    def test_single_experiment_with_output_dir(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["tab1", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "tab1.txt").exists()
        assert "Altocumulus" in capsys.readouterr().out

    def test_unknown_experiment_exits_nonzero_and_lists_ids(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig99"]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""  # nothing ran
        assert "unknown experiment 'fig99'" in captured.err
        for exp_id in list_experiments():
            assert exp_id in captured.err

    def test_unknown_experiment_is_caught_before_any_run(self, capsys, tmp_path):
        from repro.experiments.cli import main

        assert main(["fig99", "--out", str(tmp_path)]) == 2
        assert list(tmp_path.iterdir()) == []

    def test_negative_jobs_rejected(self, capsys):
        from repro.experiments.cli import main

        assert main(["tab1", "--jobs", "-2"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestCliTelemetry:
    def test_trace_and_metrics_export(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "quickstart", "--scale", "0.01",
            "--trace", str(trace), "--trace-sample", "10",
            "--metrics-out", str(metrics),
        ]) == 0
        doc = json.loads(trace.read_text())
        assert doc["metadata"]["sample_every"] == 10
        request_events = [e for e in doc["traceEvents"]
                          if e.get("cat") == "request" and e["ph"] == "X"]
        assert request_events  # sampled lifecycles made it out
        runs = json.loads(metrics.read_text())["runs"]
        assert runs[0]["system"]  # the Altocumulus variant's name
        assert runs[0]["metrics"]["system.offered"] > 0
        assert "trace events" in capsys.readouterr().out

    def test_capture_forces_serial_uncached(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main([
            "quickstart", "--scale", "0.01", "--jobs", "4",
            "--metrics-out", str(tmp_path / "m.json"),
        ]) == 0
        assert "--jobs 1" in capsys.readouterr().err

    def test_bad_trace_sample_rejected(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main([
            "quickstart", "--trace", str(tmp_path / "t.json"),
            "--trace-sample", "0",
        ]) == 2
        assert "--trace-sample" in capsys.readouterr().err


class TestJsonOutput:
    def test_to_json_round_trips(self):
        import json

        result = get_experiment("tab1")()
        payload = json.loads(result.to_json())
        assert payload["exp_id"] == "tab1"
        assert payload["headers"] == result.headers
        assert len(payload["rows"]) == len(result.rows)

    def test_save_json_writes_file(self, tmp_path):
        import json

        result = get_experiment("tab1")()
        path = result.save_json(str(tmp_path))
        with open(path) as handle:
            assert json.load(handle)["title"]

    def test_cli_json_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main(["tab1", "--out", str(tmp_path), "--json"]) == 0
        assert (tmp_path / "tab1.json").exists()
