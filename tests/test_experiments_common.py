"""Unit tests for the shared experiment machinery."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    gentle_bursts,
    latency_throughput_curve,
    real_world_arrivals,
    run_once,
)
from repro.schedulers.jbsq import ideal_cfcfs
from repro.workload.arrivals import PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.request import RequestKind
from repro.workload.service import Fixed


def builder(sim, streams):
    return ideal_cfcfs(sim, streams, 4)


class TestRunOnce:
    def test_fresh_simulator_per_call(self):
        a = run_once(builder, PoissonArrivals(1e6), Fixed(500.0),
                     n_requests=500, seed=1)
        b = run_once(builder, PoissonArrivals(1e6), Fixed(500.0),
                     n_requests=500, seed=1)
        assert a.latency.p99 == b.latency.p99  # no state leaked

    def test_request_factory_and_connections_plumbed(self):
        def factory(request):
            request.kind = RequestKind.GET

        result = run_once(
            builder, PoissonArrivals(1e6), Fixed(500.0),
            n_requests=200, seed=1,
            connections=ConnectionPool(3),
            request_factory=factory,
        )
        assert all(r.kind is RequestKind.GET for r in result.requests)
        assert {r.connection for r in result.requests} <= {0, 1, 2}


class TestCurve:
    def test_points_follow_rates(self):
        points = latency_throughput_curve(
            builder, [1e6, 2e6], Fixed(500.0), n_requests=400,
            slo_ns=10_000.0,
        )
        assert [p.rate_rps for p in points] == [1e6, 2e6]
        assert all(p.p99_ns > 0 for p in points)
        assert all(0 <= p.violation_ratio <= 1 for p in points)

    def test_latency_grows_with_load(self):
        points = latency_throughput_curve(
            builder, [1e6, 7.5e6], Fixed(500.0), n_requests=2_000,
            slo_ns=10_000.0,
        )
        assert points[1].p99_ns >= points[0].p99_ns

    def test_custom_arrival_factory(self):
        points = latency_throughput_curve(
            builder, [1e6], Fixed(500.0), n_requests=400,
            slo_ns=10_000.0,
            arrival_factory=lambda r: gentle_bursts(r),
        )
        assert len(points) == 1


class TestArrivalProfiles:
    def test_profiles_hit_nominal_rate(self):
        import numpy as np

        rng = np.random.default_rng(0)
        for profile in (real_world_arrivals, gentle_bursts):
            process = profile(50e6)
            gaps = [process.next_gap(rng) for _ in range(150_000)]
            measured = len(gaps) / sum(gaps) * 1e9
            assert measured == pytest.approx(50e6, rel=0.12)


class TestResult:
    def test_table_includes_notes(self):
        result = ExperimentResult(
            exp_id="x", title="t", headers=["a"], rows=[[1]], notes="hello"
        )
        assert "hello" in result.table()

    def test_to_json_is_strict_json_with_non_finite_floats(self):
        # Regression: rows with NaN/inf used to serialize as the bare
        # ``NaN``/``Infinity`` literals, which strict JSON parsers (and
        # therefore every downstream plotting pipeline) reject.
        import json
        import math

        result = ExperimentResult(
            exp_id="x",
            title="t",
            headers=["a", "b", "c"],
            rows=[[float("nan"), float("inf"), float("-inf")], [1.5, 2, "ok"]],
            series={"curve": [float("inf"), 0.25], "t_lower": float("nan")},
        )
        payload = json.loads(result.to_json())  # strict by default
        assert payload["rows"][0] == [None, "inf", "-inf"]
        assert payload["rows"][1] == [1.5, 2, "ok"]
        assert payload["series"]["curve"] == ["inf", 0.25]
        assert payload["series"]["t_lower"] is None
        # Finite values survive untouched.
        assert math.isclose(payload["rows"][1][0], 1.5)

    def test_to_json_stringifies_unserializable_objects(self):
        import json

        class Opaque:
            def __repr__(self):
                return "<opaque>"

        result = ExperimentResult(
            exp_id="x", title="t", headers=["a"], rows=[[Opaque()]]
        )
        assert json.loads(result.to_json())["rows"][0] == ["<opaque>"]
