"""Failure-injection and edge-case tests: tiny hardware resources,
rejected migrations, zero-length work, and pathological workloads must
degrade gracefully -- never hang, lose, or duplicate requests."""

import pytest

from repro.api import run_workload
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.hw.constants import HwConstants
from repro.schedulers.jbsq import ideal_cfcfs
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Fixed
from tests.conftest import make_request


class TestTinyHardware:
    def test_bounded_mrs_under_migration_pressure(self, sim, streams):
        """Tiny MR files force NACKs and drops; accounting stays exact."""
        config = AltocumulusConfig(
            n_groups=2, group_size=4, bulk=8, concurrency=1,
            offered_load=0.95, mr_capacity=6,
        )
        system = AltocumulusSystem(sim, streams, config)
        n = 800
        run_workload(
            system, sim, streams, PoissonArrivals(5e6), Fixed(1_000.0),
            n_requests=n, warmup_fraction=0.0,
            connections=ConnectionPool(1),
        )
        assert system.stats.completed + system.stats.dropped == n
        for hw in system.managers:
            assert hw.in_flight_descriptors == 0

    def test_one_entry_send_fifo_backpressures_not_crashes(self, sim, streams):
        constants = HwConstants(send_fifo_entries=1, recv_fifo_entries=1)
        config = AltocumulusConfig(
            n_groups=2, group_size=4, bulk=8, concurrency=1,
            offered_load=0.95,
        )
        system = AltocumulusSystem(sim, streams, config, constants=constants)
        result = run_workload(
            system, sim, streams, PoissonArrivals(5e6), Fixed(1_000.0),
            n_requests=500, warmup_fraction=0.0,
            connections=ConnectionPool(1),
        )
        assert len(result.requests) == 500


class TestDegenerateWork:
    def test_zero_service_time_requests(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 2)
        result = run_workload(
            system, sim, streams, DeterministicArrivals(1e6), Fixed(0.0),
            n_requests=100, warmup_fraction=0.0,
        )
        assert len(result.requests) == 100
        assert all(r.latency >= 0 for r in result.requests)

    def test_single_request_workload(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 1)
        result = run_workload(
            system, sim, streams, DeterministicArrivals(1e3), Fixed(100.0),
            n_requests=1, warmup_fraction=0.0,
        )
        assert result.latency.count == 1

    def test_gigantic_request_does_not_stall_others(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 4)
        huge = make_request(req_id=0, service_time=1e9)  # a 1-second RPC
        system.offer(huge)
        shorts = [make_request(req_id=i, service_time=100.0)
                  for i in range(1, 10)]
        for r in shorts:
            system.offer(r)
        system.expect(10)
        sim.run(until=10**12)
        assert all(r.latency < 1e6 for r in shorts)
        assert huge.completed


class TestHookFailures:
    def test_completion_hook_exception_propagates(self, sim, streams):
        """A buggy application hook fails loudly at the offending event,
        not silently."""
        system = ideal_cfcfs(sim, streams, 1)
        system.completion_hooks.append(
            lambda r: (_ for _ in ()).throw(RuntimeError("app bug"))
        )
        system.offer(make_request())
        with pytest.raises(RuntimeError, match="app bug"):
            sim.run(until=10**9)

    def test_execution_penalty_exception_propagates(self, sim, streams):
        config = AltocumulusConfig(n_groups=2, group_size=4)

        def bad_penalty(request):
            raise ValueError("penalty bug")

        system = AltocumulusSystem(sim, streams, config,
                                   execution_penalty=bad_penalty)
        system.offer(make_request())
        with pytest.raises(ValueError, match="penalty bug"):
            sim.run(until=10**9)


class TestPathologicalTraffic:
    def test_simultaneous_burst_arrivals(self, sim, streams):
        """A whole batch arriving at the same timestamp (MMPP trains)
        is dispatched without double-assignment."""
        system = ideal_cfcfs(sim, streams, 4)
        for i in range(50):
            system.offer(make_request(req_id=i, service_time=200.0))
        system.expect(50)
        sim.run(until=10**9)
        ids = {r.req_id for r in system.finished_requests}
        assert len(ids) == 50

    def test_sustained_overload_terminates(self, sim, streams):
        """2x overload: the run still terminates once the queue drains
        (open-loop, finite request count)."""
        system = ideal_cfcfs(sim, streams, 2)
        result = run_workload(
            system, sim, streams, DeterministicArrivals(4e6), Fixed(1_000.0),
            n_requests=2_000, warmup_fraction=0.0,
        )
        assert len(result.requests) == 2_000
        # Latency grows roughly linearly through the run under overload.
        assert result.latency.maximum > 100_000.0
