"""Regression gates for the job model's headline claims.

Pinned behaviors (fixed seeds, so exact simulations -- the margins
below are generous against incidental perturbation, not noise):

* **Tail-at-scale separation.**  Scatter-gather under shared-flow hash
  steering self-inflicts a k-wide incast; the job-p99 gap between hash
  and shortest-wait steering must be positive and *grow* with the
  fan-out k (the fig_fanout Panel A claim).
* **Zero-queueing boundary.**  Gang admission waits are near zero at
  low core load for every demand and diverge with load, and at a fixed
  load wider gangs wait longer (the fig_fanout Panel B claim).
"""

import pytest

from repro.api import run_workload
from repro.cluster.topology import RackConfig, build_rack
from repro.schedulers.jbsq import ideal_cfcfs
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload import Exponential, PoissonArrivals
from repro.workload.jobs import FixedDegree, JobShape

N_SERVERS = 4
CORES_PER_SERVER = 8
SERVICE_NS = 1000.0
LOAD = 0.65
N_JOBS = 4_000
SEED = 1


def _rack_job_p99(policy: str, k: int) -> float:
    streams = RandomStreams(SEED)
    sim = Simulator()
    rack = build_rack(sim, streams, RackConfig(
        n_servers=N_SERVERS, cores_per_server=CORES_PER_SERVER,
        policy=policy,
    ))
    capacity = N_SERVERS * CORES_PER_SERVER / SERVICE_NS * 1e9
    result = run_workload(
        rack, sim, streams, PoissonArrivals(LOAD * capacity / k),
        Exponential(SERVICE_NS), n_requests=N_JOBS, warmup_fraction=0.1,
        jobs=JobShape(fanout=FixedDegree(k), sibling_connections="shared"),
    )
    return result.jobs.latency.p99 if result.jobs else result.latency.p99


def _gang_mean_wait(demand: int, load: float, n_jobs: int = 3_000) -> float:
    streams = RandomStreams(SEED)
    sim = Simulator()
    system = ideal_cfcfs(sim, streams, n_cores=8)
    job_rate = load * 8 / (SERVICE_NS * demand) * 1e9
    result = run_workload(
        system, sim, streams, PoissonArrivals(job_rate),
        Exponential(SERVICE_NS), n_requests=n_jobs, warmup_fraction=0.1,
        jobs=JobShape(core_demand=FixedDegree(demand)),
    )
    waits = [r.started - r.enqueued for r in result.requests
             if r.started is not None and r.enqueued is not None]
    assert waits
    return sum(waits) / len(waits)


class TestFanoutSeparationGate:
    def test_hash_vs_shortest_wait_gap_grows_with_fanout(self):
        gaps = {}
        for k in (2, 4, 8):
            gaps[k] = _rack_job_p99("hash", k) - _rack_job_p99(
                "shortest_wait", k)
        # The incast penalty exists at every width and compounds with k.
        assert gaps[2] > 0
        assert gaps[4] > gaps[2]
        assert gaps[8] > gaps[4]
        # Measured gap at k=8 is ~6 us (hash ~15 us vs shortest-wait
        # ~8.7 us); gate at half that so only a real regression trips.
        assert gaps[8] > 3_000.0

    def test_spread_mitigates_the_hash_incast(self):
        k = 8
        hash_p99 = _rack_job_p99("hash", k)
        spread_p99 = _rack_job_p99("spread", k)
        assert spread_p99 < hash_p99


class TestZeroQueueingGate:
    def test_low_load_is_the_zero_queueing_regime(self):
        # At 30% core load every gang width admits nearly immediately
        # (measured: <0.2 us mean wait even for 4-wide gangs on 8 cores).
        for demand in (1, 2, 4):
            assert _gang_mean_wait(demand, 0.3) < 500.0

    def test_waits_diverge_past_the_boundary(self):
        for demand in (2, 4):
            low = _gang_mean_wait(demand, 0.3)
            high = _gang_mean_wait(demand, 0.85)
            assert high > 2 * low

    def test_wider_gangs_wait_longer_at_fixed_load(self):
        waits = [_gang_mean_wait(demand, 0.7) for demand in (1, 2, 4)]
        assert waits[0] < waits[1] < waits[2]
