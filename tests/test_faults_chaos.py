"""Chaos acceptance gate for :mod:`repro.experiments.fig_chaos`.

Pins the headline claim of the fault-injection subsystem at test scale:
a mid-run server crash is invisible (within the healthy latency
envelope) to health-aware inter-server steering, while connection-hash
-- which has no health feedback -- pays retry-scale latency for the
whole crash window.  Also pins the exact-accounting contract: every
``faults.*`` counter matches the injected plan, event for event.
"""

import pytest

from repro.experiments import fig_chaos
from repro.runner import overrides
from repro.runner.executor import execute_point

#: Big enough that the pre-crash window isn't dominated by its own tail:
#: arrivals just before the crash land on the (about-to-die) hot server
#: and pay retry latency, so a too-short pre window contaminates pre-p99.
N_REQUESTS = 12_000
SEED = 1


@pytest.fixture(scope="module")
def chaos_points():
    """One in-process faulted run per policy at test scale."""
    specs, crash_start, crash_end = fig_chaos._specs(N_REQUESTS, seed=SEED)
    points = {
        name: execute_point(spec)
        for (name, _), spec in zip(fig_chaos.POLICIES, specs)
    }
    return points, crash_start, crash_end


class TestCrashRecoveryContrast:
    def test_health_aware_policies_ride_through_the_crash(self, chaos_points):
        points, _, _ = chaos_points
        for name in ("power_of_2", "shortest_wait"):
            m = points[name].metrics
            pre, during, post = (
                m["p99_pre_ns"], m["p99_during_ns"], m["p99_post_ns"]
            )
            # Steering around the blackhole keeps p99 in the healthy
            # envelope during the crash and recovers it fully after.
            assert during < 3.0 * pre, (name, pre, during)
            assert post < 2.0 * pre, (name, pre, post)

    def test_hash_policy_pays_retry_scale_latency(self, chaos_points):
        points, _, _ = chaos_points
        m = points["hash"].metrics
        pre, during = m["p99_pre_ns"], m["p99_during_ns"]
        # Crashed-server flows survive only via client timeouts/retries,
        # so during-crash p99 jumps to the retry-budget scale.
        assert during > 5.0 * pre, (pre, during)
        assert during > fig_chaos.RETRY.timeout_ns

    def test_only_hash_steers_into_the_blackhole(self, chaos_points):
        points, _, _ = chaos_points
        hash_blackholed = points["hash"].instruments[
            "faults.requests_blackholed"]
        assert hash_blackholed > 100
        for name in ("power_of_2", "shortest_wait"):
            inst = points[name].instruments
            # Health-aware policies stop *steering* at the dead server
            # the instant it goes down; only the handful of requests
            # already in transit through the switch can still arrive.
            assert inst["faults.requests_blackholed"] <= 5, name


class TestExactFaultAccounting:
    def test_counters_match_the_injected_plan(self, chaos_points):
        points, _, _ = chaos_points
        for name, point in points.items():
            inst = point.instruments
            assert inst["faults.server_crashes"] == 1, name
            assert inst["faults.server_recoveries"] == 1, name
            assert inst["faults.events_fired"] == 2, name
            assert inst["faults.events_skipped"] == 0, name

    def test_every_request_reaches_one_verdict(self, chaos_points):
        points, _, _ = chaos_points
        for name, point in points.items():
            inst = point.instruments
            assert (
                inst["client.retry.succeeded"] + inst["client.retry.failed"]
                == N_REQUESTS
            ), name
            assert (
                inst["client.retry.completed"]
                + inst["client.retry.dropped"]
                + inst["client.retry.timed_out"]
                + inst["client.retry.in_flight_at_end"]
                == inst["client.retry.injected"] + inst["client.retry.retries"]
            ), name

    def test_crash_window_spans_the_middle_of_the_run(self, chaos_points):
        points, crash_start, crash_end = chaos_points
        assert 0.0 < crash_start < crash_end
        for name, point in points.items():
            m = point.metrics
            # All three arrival windows are populated at test scale, and
            # together they partition the measured (post-warmup) log.
            assert m["n_pre"] > 0 and m["n_during"] > 0 and m["n_post"] > 0
            assert (
                m["n_pre"] + m["n_during"] + m["n_post"]
                == point.latency.count
            )


class TestExperimentEntryPoint:
    def test_run_produces_one_row_per_policy(self):
        with overrides(use_cache=False, jobs=1, progress=False):
            result = fig_chaos.run(scale=0.05, seed=SEED)
        assert result.exp_id == "fig_chaos"
        assert [row[0] for row in result.rows] == [
            name for name, _ in fig_chaos.POLICIES
        ]
        assert set(result.series) == {name for name, _ in fig_chaos.POLICIES}

    def test_registered_in_experiment_registry(self):
        from repro.experiments.registry import EXPERIMENTS
        assert "fig_chaos" in EXPERIMENTS
