"""Unit tests for the retrying client: timeout/retry/backoff behaviour,
duplicate detection, response fencing, and the per-attempt conservation
bookkeeping -- against a scripted fake system so every scenario is
exact."""

import pytest

from repro.faults import RetryClient, RetryPolicy
from repro.telemetry import MetricRegistry
from tests.conftest import make_request


class FakeSystem:
    """Scripted system duck: the test completes/drops attempts by hand."""

    name = "fake"

    def __init__(self, sim):
        self.sim = sim
        self.metrics = MetricRegistry()
        self.completion_hooks = []
        self.drop_hooks = []
        self.offered = []

    def offer(self, request):
        self.offered.append(request)

    def complete(self, request):
        request.finished = self.sim.now
        for hook in self.completion_hooks:
            hook(request)

    def drop(self, request):
        request.dropped = True
        for hook in self.drop_hooks:
            hook(request)


RETRY = RetryPolicy(
    timeout_ns=1_000.0,
    max_retries=2,
    backoff_base_ns=100.0,
    backoff_cap_ns=400.0,
    jitter=0.0,  # deterministic spacing for exact-time assertions
)


@pytest.fixture
def system(sim):
    return FakeSystem(sim)


@pytest.fixture
def client(sim, streams, system):
    return RetryClient(sim, streams, system, RETRY)


def counters(system):
    return {
        key.rsplit(".", 1)[-1]: value
        for key, value in system.metrics.snapshot().items()
        if key.startswith("client.retry.")
    }


def assert_conserved(system):
    c = counters(system)
    assert (
        c["completed"] + c["dropped"] + c["timed_out"] + c["in_flight_at_end"]
        == c["injected"] + c["retries"]
    ), c


class TestImmediateSuccess:
    def test_completion_before_timeout(self, sim, system, client):
        request = make_request(req_id=1)
        client.send(request)
        assert system.offered == [request]
        sim.schedule(500.0, system.complete, request)
        sim.run(until=10_000.0)
        c = counters(system)
        assert c["completed"] == 1 and c["timed_out"] == 0
        assert c["succeeded"] == 1 and c["retries"] == 0
        assert client.open_attempts == 0
        assert_conserved(system)

    def test_finalize_stamps_client_observed_latency(self, sim, system, client):
        request = make_request(req_id=1)
        client.send(request)
        sim.schedule(500.0, system.complete, request)
        sim.run(until=10_000.0)
        client.finalize()
        assert request.finished == 500.0
        assert not request.dropped


class TestTimeoutAndRetry:
    def test_lost_attempt_is_retried_after_backoff(self, sim, system, client):
        request = make_request(req_id=1)
        client.send(request)  # vanishes: the fake never completes it
        sim.run(until=1_050.0)
        c = counters(system)
        assert c["timed_out"] == 1
        sim.run(until=1_200.0)  # timeout (1000) + backoff (100)
        assert len(system.offered) == 2
        clone = system.offered[1]
        assert clone.logical_id == 1 and clone.attempt == 1
        assert clone.req_id != request.req_id
        # The retried attempt succeeds; the logical request succeeds.
        system.complete(clone)
        c = counters(system)
        assert c["succeeded"] == 1 and c["retries"] == 1
        assert_conserved(system)

    def test_retries_exhausted_fails_the_logical_request(
        self, sim, system, client
    ):
        request = make_request(req_id=1)
        client.send(request)
        sim.run(until=60_000.0)  # nothing ever completes
        c = counters(system)
        assert c["timed_out"] == 3  # original + 2 retries
        assert c["retries"] == 2
        assert c["failed"] == 1 and c["succeeded"] == 0
        client.finalize()
        assert request.dropped
        assert_conserved(system)

    def test_backoff_doubles_between_retries(self, sim, system, client):
        client.send(make_request(req_id=1))
        sim.run(until=60_000.0)
        sends = [r.arrival for r in system.offered]
        # send 0 at t=0; its timeout at 1000 + backoff 100 -> retry 1 at
        # 1100; retry 1 times out at 2100 + backoff 200 -> retry 2 at 2300.
        assert sends == [0.0, 1_100.0, 2_300.0]

    def test_zero_retries_fails_on_first_timeout(self, sim, streams, system):
        client = RetryClient(
            sim, streams, system,
            RetryPolicy(timeout_ns=1_000.0, max_retries=0, jitter=0.0),
        )
        client.send(make_request(req_id=1))
        sim.run(until=5_000.0)
        c = counters(system)
        assert c["failed"] == 1 and c["retries"] == 0
        assert_conserved(system)


class TestServerDrop:
    def test_dropped_attempt_is_retried(self, sim, system, client):
        request = make_request(req_id=1)
        client.send(request)
        sim.schedule(200.0, system.drop, request)
        sim.run(until=400.0)
        c = counters(system)
        assert c["dropped"] == 1 and c["timed_out"] == 0
        assert len(system.offered) == 2  # backoff=100 after the drop
        assert_conserved(system)

    def test_drop_after_timeout_not_double_counted(self, sim, system, client):
        request = make_request(req_id=1)
        client.send(request)
        sim.schedule(2_000.0, system.drop, request)  # after the timeout
        sim.run(until=2_050.0)  # before the retry's own timeout at 2100
        c = counters(system)
        assert c["timed_out"] == 1
        assert c["dropped"] == 0  # server-side cleanup of an abandoned attempt
        assert_conserved(system)


class TestDuplicates:
    def test_double_completion_flags_duplicate(self, sim, system, client):
        """A timed-out original finishing after its retry already
        succeeded must hit the dedup layer, not count twice."""
        request = make_request(req_id=1)
        client.send(request)
        sim.run(until=1_200.0)  # original times out, retry sent
        clone = system.offered[1]
        system.complete(clone)  # retry wins
        system.complete(request)  # zombie original completes too
        c = counters(system)
        assert c["succeeded"] == 1
        assert c["responses"] == 2
        assert c["duplicates"] == 1
        snapshot = system.metrics.snapshot()
        assert snapshot["kvs.dedup.unique"] == 1
        assert snapshot["kvs.dedup.duplicates"] == 1
        # No service without a dedup audit trail:
        assert snapshot["kvs.dedup.unique"] + snapshot["kvs.dedup.duplicates"] \
            == c["responses"]
        assert_conserved(system)

    def test_late_success_counted(self, sim, system, client):
        """The original times out, then completes before any retry does:
        the logical request succeeds via the late response."""
        request = make_request(req_id=1)
        client.send(request)
        sim.run(until=1_050.0)  # timed out, retry still in backoff
        system.complete(request)
        c = counters(system)
        assert c["late_successes"] == 1 and c["succeeded"] == 1
        # The pending backoff resend was cancelled: no further sends.
        sim.run(until=20_000.0)
        assert len(system.offered) == 1
        assert_conserved(system)

    def test_completion_after_verdict_does_not_flip_failure(
        self, sim, system, client
    ):
        request = make_request(req_id=1)
        client.send(request)
        sim.run(until=60_000.0)  # retries exhaust, logical fails
        assert counters(system)["failed"] == 1
        system.complete(system.offered[-1])  # zombie finishes afterwards
        c = counters(system)
        assert c["failed"] == 1 and c["succeeded"] == 0
        client.finalize()
        assert request.dropped
        assert_conserved(system)


class TestResponseFencing:
    def test_fenced_response_waits_for_timeout(self, sim, streams, system):
        """A completion whose response is lost (server down) leaves the
        attempt open; the timeout terminates it."""
        client = RetryClient(
            sim, streams, system,
            RetryPolicy(timeout_ns=1_000.0, max_retries=0, jitter=0.0),
            response_delivered=lambda request: False,
        )
        client.send(make_request(req_id=1))
        system.complete(system.offered[0])
        c = counters(system)
        assert c["completed"] == 0 and c["responses"] == 0
        sim.run(until=2_000.0)
        c = counters(system)
        assert c["timed_out"] == 1 and c["failed"] == 1
        assert_conserved(system)


class TestTermination:
    def test_expect_stops_at_logical_terminals_not_attempts(
        self, sim, system, client
    ):
        requests = [make_request(req_id=i) for i in range(3)]
        for request in requests:
            client.send(request)
        client.expect(3)
        # One completes now; the others burn all retries.
        system.complete(requests[0])
        sim.run(until=10**9)
        c = counters(system)
        assert c["succeeded"] == 1 and c["failed"] == 2
        # Attempts: 1 + 2 * (1 + max_retries).
        assert c["injected"] + c["retries"] == 7
        assert sim.now < 10**9  # stopped by the client, not the horizon
        assert_conserved(system)

    def test_expect_rejects_nonpositive(self, client):
        with pytest.raises(ValueError):
            client.expect(0)
