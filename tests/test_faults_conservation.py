"""The conservation battery: under any fault plan, every attempt the
client sends lands in exactly one terminal bucket, and nothing is served
twice without the duplicate detector seeing it.

Pinned identities (at shutdown, for every system x scenario):

    completed + dropped + timed_out + in_flight_at_end
        == injected + retries                      (attempt conservation)
    succeeded + failed == injected                 (logical conservation)
    responses == kvs.dedup.unique + kvs.dedup.duplicates   (at-most-once)
    client.retry.duplicates == kvs.dedup.duplicates

Fixed scenarios run across *every* registered system; randomized plans
(hypothesis, derandomized with fixed seeds) probe the space of schedules
on three representative systems.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import available_systems, quick_run
from repro.faults import FaultEvent, FaultPlan, RetryPolicy

#: Shape shared by every conservation run: 8 cores (4x2 for the rack),
#: ~50% load, short enough to keep the whole battery in seconds.
N_CORES = 8
RATE_RPS = 4e6
N_REQUESTS = 400
SEED = 7

RETRY = RetryPolicy(timeout_ns=15_000.0, max_retries=2,
                    backoff_base_ns=5_000.0, backoff_cap_ns=20_000.0,
                    jitter=0.5)

#: Fixed multi-fault scenario, valid on every system: single-server
#: systems skip the rack-only events, non-Altocumulus skip manager_fail.
SCENARIO = FaultPlan(
    events=(
        FaultEvent(time_ns=10_000.0, kind="server_crash", target=0,
                   duration_ns=20_000.0),
        FaultEvent(time_ns=15_000.0, kind="nic_drop", target=0,
                   magnitude=0.3, duration_ns=15_000.0),
        FaultEvent(time_ns=20_000.0, kind="core_stall", target=0,
                   subtarget=1, magnitude=10.0, duration_ns=20_000.0),
        FaultEvent(time_ns=30_000.0, kind="manager_fail", target=0,
                   subtarget=0),
        FaultEvent(time_ns=35_000.0, kind="tor_partition", target=1,
                   duration_ns=15_000.0),
    ),
    retry=RETRY,
)


def assert_conserved(metrics, n_requests):
    c = {key.rsplit(".", 1)[-1]: value
         for key, value in metrics.items()
         if key.startswith("client.retry.")}
    assert c["injected"] == n_requests
    assert (
        c["completed"] + c["dropped"] + c["timed_out"] + c["in_flight_at_end"]
        == c["injected"] + c["retries"]
    ), f"attempt conservation violated: {c}"
    assert c["succeeded"] + c["failed"] == c["injected"], (
        f"logical conservation violated: {c}"
    )
    assert c["responses"] == (
        metrics["kvs.dedup.unique"] + metrics["kvs.dedup.duplicates"]
    ), "a response bypassed the duplicate detector"
    assert c["duplicates"] == metrics["kvs.dedup.duplicates"]


@pytest.mark.parametrize("system", available_systems())
def test_fixed_scenario_conserves_requests(system):
    result = quick_run(
        system, n_cores=N_CORES, rate_rps=RATE_RPS, mean_service_ns=1000.0,
        n_requests=N_REQUESTS, seed=SEED, faults=SCENARIO,
    )
    assert_conserved(result.metrics, N_REQUESTS)


@pytest.mark.parametrize("system", available_systems())
def test_no_plan_keeps_fault_counters_out(system):
    """The control: a plain run registers no fault instruments at all."""
    result = quick_run(system, n_cores=N_CORES, rate_rps=RATE_RPS,
                       n_requests=200, seed=SEED)
    assert not any(
        key.startswith(("faults.", "client.retry.", "kvs.dedup."))
        for key in result.metrics
    )


# ----------------------------------------------------------------------
# Randomized plans (hypothesis)
# ----------------------------------------------------------------------
_TIMES = st.floats(0.0, 120_000.0, allow_nan=False, allow_infinity=False)
_DURATIONS = st.floats(1_000.0, 50_000.0, allow_nan=False,
                       allow_infinity=False)


@st.composite
def fault_events(draw, n_servers, cores_per_server):
    kind = draw(st.sampled_from(
        ["server_crash", "nic_drop", "core_stall", "tor_degrade",
         "tor_partition", "manager_fail"]
    ))
    target = draw(st.integers(0, n_servers - 1))
    kwargs = dict(time_ns=draw(_TIMES), kind=kind, target=target)
    if kind in ("server_crash", "tor_partition"):
        kwargs["duration_ns"] = draw(_DURATIONS)
    elif kind == "nic_drop":
        kwargs["magnitude"] = draw(st.floats(0.05, 1.0))
        kwargs["duration_ns"] = draw(_DURATIONS)
    elif kind == "tor_degrade":
        kwargs["magnitude"] = draw(st.floats(0.05, 0.95))
        kwargs["duration_ns"] = draw(_DURATIONS)
    elif kind == "core_stall":
        kwargs["subtarget"] = draw(st.integers(0, cores_per_server - 1))
        kwargs["magnitude"] = draw(st.floats(1.0, 50.0))
        kwargs["duration_ns"] = draw(_DURATIONS)
    return FaultEvent(**kwargs)


@st.composite
def fault_plans(draw, n_servers, cores_per_server):
    events = draw(st.lists(
        fault_events(n_servers, cores_per_server), min_size=1, max_size=4,
    ))
    retry = RetryPolicy(
        timeout_ns=draw(st.floats(5_000.0, 40_000.0)),
        max_retries=draw(st.integers(0, 3)),
        backoff_base_ns=5_000.0,
        backoff_cap_ns=40_000.0,
        jitter=draw(st.floats(0.0, 0.9)),
    )
    return FaultPlan(events=tuple(events), retry=retry)


_RANDOMIZED = settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(plan=fault_plans(n_servers=1, cores_per_server=N_CORES))
@_RANDOMIZED
def test_randomized_plans_single_server_altocumulus(plan):
    result = quick_run("altocumulus", n_cores=N_CORES, rate_rps=RATE_RPS,
                       n_requests=200, seed=SEED, faults=plan)
    assert_conserved(result.metrics, 200)


@given(plan=fault_plans(n_servers=1, cores_per_server=N_CORES))
@_RANDOMIZED
def test_randomized_plans_single_server_rss(plan):
    result = quick_run("rss", n_cores=N_CORES, rate_rps=RATE_RPS,
                       n_requests=200, seed=SEED, faults=plan)
    assert_conserved(result.metrics, 200)


@given(plan=fault_plans(n_servers=4, cores_per_server=2))
@_RANDOMIZED
def test_randomized_plans_rack(plan):
    result = quick_run("rack", n_cores=N_CORES, rate_rps=RATE_RPS,
                       n_requests=200, seed=SEED, faults=plan)
    assert_conserved(result.metrics, 200)


def test_faulted_runs_are_reproducible():
    """Same plan + same seed -> bit-identical outcome counters."""
    runs = [
        quick_run("rack", n_cores=N_CORES, rate_rps=RATE_RPS,
                  n_requests=N_REQUESTS, seed=SEED, faults=SCENARIO).metrics
        for _ in range(2)
    ]
    keys = [k for k in runs[0]
            if k.startswith(("faults.", "client.retry.", "kvs.dedup."))]
    assert keys
    for key in keys:
        assert runs[0][key] == runs[1][key], key


# ----------------------------------------------------------------------
# Sub-request granularity under scatter-gather
# ----------------------------------------------------------------------
# With a job structure attached, the client injects one logical request
# per *sub-request*; the attempt/logical identities above must hold at
# that granularity, and on top of them a job-level identity appears:
#
#     job.completed + job.dropped == job.count        (job conservation)
#     client.retry.injected == job.subrequests        (scatter accounting)
#
# SCENARIO's server_crash at t=10us lands mid-run for these rates, so
# siblings of one job routinely straddle a crash window: some complete,
# some retry, some exhaust retries -- the all-or-nothing job verdict
# must stay consistent with the per-sub logical verdicts throughout.

from repro.workload.jobs import ChoiceDegree, FixedDegree, JobShape, UniformDegree  # noqa: E402

FANOUT_SHAPE = JobShape(fanout=ChoiceDegree((1, 2, 4), (0.5, 0.3, 0.2)))


def assert_jobs_conserved(result):
    extra = result.extra
    assert extra["job.completed"] + extra["job.dropped"] == extra["job.count"]
    c = {key.rsplit(".", 1)[-1]: value
         for key, value in result.metrics.items()
         if key.startswith("client.retry.")}
    assert c["injected"] == extra["job.subrequests"]
    # Per-sub logical verdicts must telescope into the job verdicts:
    # every failed sub dooms its whole job, so failed subs can never
    # exceed the dropped jobs' total fan-out, and completed jobs need
    # every sibling succeeded.
    records = result.jobs.records
    failed_fanout = sum(j.fanout for j in records if j.dropped)
    assert c["failed"] <= failed_fanout
    assert sum(j.fanout for j in records if j.completed) <= c["succeeded"]


@pytest.mark.parametrize("system", ["altocumulus", "rack", "datacenter"])
def test_scatter_gather_conserves_subrequests_mid_crash(system):
    result = quick_run(
        system, n_cores=N_CORES, rate_rps=RATE_RPS, mean_service_ns=1000.0,
        n_requests=N_REQUESTS, seed=SEED, faults=SCENARIO, jobs=FANOUT_SHAPE,
    )
    assert_conserved(result.metrics, result.extra["job.subrequests"])
    assert_jobs_conserved(result)


def test_scatter_gather_faulted_runs_are_reproducible():
    runs = [
        quick_run("rack", n_cores=N_CORES, rate_rps=RATE_RPS,
                  n_requests=N_REQUESTS, seed=SEED, faults=SCENARIO,
                  jobs=FANOUT_SHAPE)
        for _ in range(2)
    ]
    for key in ("job.count", "job.completed", "job.dropped",
                "job.subrequests"):
        assert runs[0].extra[key] == runs[1].extra[key], key


@st.composite
def job_shapes(draw):
    fanout = draw(st.sampled_from([
        FixedDegree(2),
        FixedDegree(4),
        UniformDegree(1, 4),
        ChoiceDegree((1, 2, 4)),
        ChoiceDegree((1, 8), (0.8, 0.2)),
    ]))
    connections = draw(st.sampled_from(["shared", "distinct"]))
    return JobShape(fanout=fanout, sibling_connections=connections)


@given(plan=fault_plans(n_servers=4, cores_per_server=2), shape=job_shapes())
@_RANDOMIZED
def test_randomized_fanout_and_fault_plans_rack(plan, shape):
    result = quick_run("rack", n_cores=N_CORES, rate_rps=RATE_RPS,
                       n_requests=150, seed=SEED, faults=plan, jobs=shape)
    assert_conserved(result.metrics, result.extra["job.subrequests"])
    assert_jobs_conserved(result)
