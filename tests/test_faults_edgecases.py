"""Edge-case battery: degenerate hardware, degenerate work, buggy
hooks, pathological traffic, and degenerate *fault plans* must degrade
gracefully -- never hang, lose, or duplicate requests.

Absorbs the former ``tests/test_failure_injection.py`` (ad-hoc failure
scenarios that predate :mod:`repro.faults`) and extends it with the
structural corners of the fault-injection subsystem itself.
"""

import pytest

from repro.api import build_system, quick_run, run_workload
from repro.cluster.topology import RackConfig, build_rack
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.hw.constants import HwConstants
from repro.schedulers.jbsq import ideal_cfcfs
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Fixed
from tests.conftest import make_request

RETRY = RetryPolicy(timeout_ns=20_000.0, max_retries=2,
                    backoff_base_ns=5_000.0, backoff_cap_ns=20_000.0,
                    jitter=0.5)


class TestTinyHardware:
    def test_bounded_mrs_under_migration_pressure(self, sim, streams):
        """Tiny MR files force NACKs and drops; accounting stays exact."""
        config = AltocumulusConfig(
            n_groups=2, group_size=4, bulk=8, concurrency=1,
            offered_load=0.95, mr_capacity=6,
        )
        system = AltocumulusSystem(sim, streams, config)
        n = 800
        run_workload(
            system, sim, streams, PoissonArrivals(5e6), Fixed(1_000.0),
            n_requests=n, warmup_fraction=0.0,
            connections=ConnectionPool(1),
        )
        assert system.stats.completed + system.stats.dropped == n
        for hw in system.managers:
            assert hw.in_flight_descriptors == 0

    def test_one_entry_send_fifo_backpressures_not_crashes(self, sim, streams):
        constants = HwConstants(send_fifo_entries=1, recv_fifo_entries=1)
        config = AltocumulusConfig(
            n_groups=2, group_size=4, bulk=8, concurrency=1,
            offered_load=0.95,
        )
        system = AltocumulusSystem(sim, streams, config, constants=constants)
        result = run_workload(
            system, sim, streams, PoissonArrivals(5e6), Fixed(1_000.0),
            n_requests=500, warmup_fraction=0.0,
            connections=ConnectionPool(1),
        )
        assert len(result.requests) == 500


class TestDegenerateWork:
    def test_zero_service_time_requests(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 2)
        result = run_workload(
            system, sim, streams, DeterministicArrivals(1e6), Fixed(0.0),
            n_requests=100, warmup_fraction=0.0,
        )
        assert len(result.requests) == 100
        assert all(r.latency >= 0 for r in result.requests)

    def test_single_request_workload(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 1)
        result = run_workload(
            system, sim, streams, DeterministicArrivals(1e3), Fixed(100.0),
            n_requests=1, warmup_fraction=0.0,
        )
        assert result.latency.count == 1

    def test_gigantic_request_does_not_stall_others(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 4)
        huge = make_request(req_id=0, service_time=1e9)  # a 1-second RPC
        system.offer(huge)
        shorts = [make_request(req_id=i, service_time=100.0)
                  for i in range(1, 10)]
        for r in shorts:
            system.offer(r)
        system.expect(10)
        sim.run(until=10**12)
        assert all(r.latency < 1e6 for r in shorts)
        assert huge.completed


class TestHookFailures:
    def test_completion_hook_exception_propagates(self, sim, streams):
        """A buggy application hook fails loudly at the offending event,
        not silently."""
        system = ideal_cfcfs(sim, streams, 1)
        system.completion_hooks.append(
            lambda r: (_ for _ in ()).throw(RuntimeError("app bug"))
        )
        system.offer(make_request())
        with pytest.raises(RuntimeError, match="app bug"):
            sim.run(until=10**9)

    def test_execution_penalty_exception_propagates(self, sim, streams):
        config = AltocumulusConfig(n_groups=2, group_size=4)

        def bad_penalty(request):
            raise ValueError("penalty bug")

        system = AltocumulusSystem(sim, streams, config,
                                   execution_penalty=bad_penalty)
        system.offer(make_request())
        with pytest.raises(ValueError, match="penalty bug"):
            sim.run(until=10**9)


class TestPathologicalTraffic:
    def test_simultaneous_burst_arrivals(self, sim, streams):
        """A whole batch arriving at the same timestamp (MMPP trains)
        is dispatched without double-assignment."""
        system = ideal_cfcfs(sim, streams, 4)
        for i in range(50):
            system.offer(make_request(req_id=i, service_time=200.0))
        system.expect(50)
        sim.run(until=10**9)
        ids = {r.req_id for r in system.finished_requests}
        assert len(ids) == 50

    def test_sustained_overload_terminates(self, sim, streams):
        """2x overload: the run still terminates once the queue drains
        (open-loop, finite request count)."""
        system = ideal_cfcfs(sim, streams, 2)
        result = run_workload(
            system, sim, streams, DeterministicArrivals(4e6), Fixed(1_000.0),
            n_requests=2_000, warmup_fraction=0.0,
        )
        assert len(result.requests) == 2_000
        # Latency grows roughly linearly through the run under overload.
        assert result.latency.maximum > 100_000.0


class TestDegenerateFaultPlans:
    def test_event_beyond_sim_end_never_fires(self, sim, streams):
        """A fault scheduled past the last terminal is simply pending
        when the client stops the run -- fired + skipped accounts for
        everything that was due, and nothing explodes at shutdown."""
        system = build_system("rss", sim, streams, 4)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=1e12, kind="server_crash", target=0,
                       duration_ns=1_000.0),
        ), retry=RETRY)
        result = run_workload(
            system, sim, streams, PoissonArrivals(2e6), Fixed(1_000.0),
            n_requests=100, warmup_fraction=0.0, faults=plan,
        )
        m = result.metrics
        assert m["faults.events_fired"] == 0
        assert m["faults.events_skipped"] == 0
        assert m["client.retry.succeeded"] == 100

    def test_empty_plan_still_wires_retry_client(self, sim, streams):
        """Zero events is a legal plan: the retry client and dedup layer
        run, every counter is exact, and nothing times out at low load."""
        system = build_system("altocumulus", sim, streams, 4)
        result = run_workload(
            system, sim, streams, PoissonArrivals(1e6), Fixed(1_000.0),
            n_requests=200, warmup_fraction=0.0,
            faults=FaultPlan(events=(), retry=RETRY),
        )
        m = result.metrics
        assert m["client.retry.succeeded"] == 200
        assert m["client.retry.retries"] == 0
        assert m["faults.events_fired"] == 0

    def test_manager_fail_with_single_group_drops_orphans(self, sim, streams):
        """With n_groups == 1 there is no peer manager to redispatch to:
        orphaned descriptors go to the drop path and conservation still
        holds."""
        result = quick_run(
            "altocumulus", n_cores=8, rate_rps=6e6, mean_service_ns=1000.0,
            n_requests=1_000, seed=5,
            faults=FaultPlan(events=(
                FaultEvent(time_ns=30_000.0, kind="manager_fail", target=0,
                           subtarget=0),
            ), retry=RETRY),
        )
        m = result.metrics
        assert m["faults.manager_fails"] == 1
        assert m["faults.orphans_redispatched"] == 0
        c = {k.rsplit(".", 1)[-1]: v for k, v in m.items()
             if k.startswith("client.retry.")}
        assert (c["completed"] + c["dropped"] + c["timed_out"]
                + c["in_flight_at_end"] == c["injected"] + c["retries"])
        assert c["succeeded"] + c["failed"] == 1_000

    def test_whole_rack_down_fails_everything_conserved(self, sim, streams):
        """Crash every server for the entire run: zero successes, every
        logical request burns its full retry budget, and the attempt
        ledger still balances."""
        rack = build_rack(sim, streams, RackConfig(
            n_servers=2, cores_per_server=2, system="altocumulus",
            policy="power_of_d",
        ))
        n = 50
        plan = FaultPlan(events=tuple(
            FaultEvent(time_ns=0.0, kind="server_crash", target=t,
                       duration_ns=1e12)
            for t in range(2)
        ), retry=RETRY)
        result = run_workload(
            rack, sim, streams, PoissonArrivals(1e6), Fixed(1_000.0),
            n_requests=n, warmup_fraction=0.0, faults=plan,
        )
        m = result.metrics
        assert m["client.retry.succeeded"] == 0
        assert m["client.retry.failed"] == n
        # Every attempt (original + full retry budget) timed out.
        assert m["client.retry.injected"] + m["client.retry.retries"] \
            == n * (1 + RETRY.max_retries)
        assert m["client.retry.timed_out"] + m["client.retry.dropped"] \
            + m["client.retry.in_flight_at_end"] \
            == n * (1 + RETRY.max_retries)

    def test_overlapping_crash_windows_are_idempotent(self, sim, streams):
        """Two overlapping crash windows on the same server: crash and
        recovery are idempotent level-sets (not nested counters), so the
        first recovery brings the server back and the second is a no-op.
        Both pairs are still fired and audited."""
        rack = build_rack(sim, streams, RackConfig(
            n_servers=2, cores_per_server=2, system="altocumulus",
            policy="power_of_d",
        ))
        plan = FaultPlan(events=(
            FaultEvent(time_ns=10_000.0, kind="server_crash", target=0,
                       duration_ns=30_000.0),
            FaultEvent(time_ns=20_000.0, kind="server_crash", target=0,
                       duration_ns=40_000.0),
        ), retry=RETRY)
        probes = {}
        sim.schedule_at(30_000.0, lambda: probes.update(
            during=rack.health.usable(0)))
        sim.schedule_at(45_000.0, lambda: probes.update(
            between=rack.health.usable(0)))
        sim.schedule_at(65_000.0, lambda: probes.update(
            after=rack.health.usable(0)))
        result = run_workload(
            rack, sim, streams, PoissonArrivals(2e6), Fixed(1_000.0),
            n_requests=200, warmup_fraction=0.0, faults=plan,
        )
        assert result.metrics["faults.server_crashes"] == 2
        assert result.metrics["faults.server_recoveries"] == 2
        assert probes["during"] is False
        assert probes["between"] is True  # first recovery wins
        assert probes["after"] is True
