"""Per-layer fault mechanics: the injector must flip exactly the right
knob at exactly the scheduled time, account every loss, and restore the
healthy state when the window closes."""

import pytest

from repro.api import build_system, quick_run, run_workload
from repro.cluster.topology import RackConfig, build_rack
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    NULL_FAULTS,
    RetryClient,
    RetryPolicy,
)
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Fixed

RETRY = RetryPolicy(timeout_ns=20_000.0, max_retries=3,
                    backoff_base_ns=5_000.0, backoff_cap_ns=20_000.0,
                    jitter=0.5)


def run_faulted(system, sim, streams, plan, n=600, rate=4e6):
    """Drive a small faulted workload through ``system`` to completion."""
    return run_workload(
        system, sim, streams, PoissonArrivals(rate), Fixed(1_000.0),
        n_requests=n, warmup_fraction=0.0, faults=plan,
    )


def make_rack(sim, streams, n_servers=4, policy="power_of_d"):
    return build_rack(sim, streams, RackConfig(
        n_servers=n_servers, cores_per_server=2, system="altocumulus",
        policy=policy,
    ))


class TestNullFaults:
    def test_null_singleton_is_disabled(self):
        assert NULL_FAULTS.enabled is False
        assert NULL_FAULTS.response_delivered(None) is True
        NULL_FAULTS.finalize()  # no-op


class TestServerCrash:
    def test_crash_window_blackholes_and_recovers(self, sim, streams):
        rack = make_rack(sim, streams)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=30_000.0, kind="server_crash", target=1,
                       duration_ns=40_000.0),
        ), retry=RETRY)
        probes = {}
        sim.schedule_at(31_000.0, lambda: probes.update(
            during=(rack.health.usable(1), rack.policy.health.impaired)))
        sim.schedule_at(71_000.0, lambda: probes.update(
            after=(rack.health.usable(1), rack.policy.health.impaired)))
        result = run_faulted(rack, sim, streams, plan)
        assert probes["during"] == (False, True)
        assert probes["after"] == (True, False)
        m = result.metrics
        assert m["faults.server_crashes"] == 1
        assert m["faults.server_recoveries"] == 1
        assert m["faults.events_fired"] == 2
        assert m["faults.events_skipped"] == 0
        assert m["client.retry.succeeded"] == 600

    def test_health_aware_policy_avoids_downed_server(self, sim, streams):
        rack = make_rack(sim, streams, policy="shortest_wait")
        plan = FaultPlan(events=(
            FaultEvent(time_ns=0.0, kind="server_crash", target=2,
                       duration_ns=10**9),
        ), retry=RETRY)
        result = run_faulted(rack, sim, streams, plan)
        # After the crash fires (t=0), nothing is steered at server 2.
        assert rack.policy.decisions[2] == 0
        assert result.metrics["faults.requests_blackholed"] == 0

    def test_hash_policy_stays_oblivious(self, sim, streams):
        """The control: connection-hash keeps steering into the
        blackhole, so crashed-server traffic is lost and retried."""
        rack = make_rack(sim, streams, policy="hash")
        plan = FaultPlan(events=(
            FaultEvent(time_ns=0.0, kind="server_crash", target=1,
                       duration_ns=10**9),
        ), retry=RETRY)
        result = run_faulted(rack, sim, streams, plan)
        assert rack.policy.decisions[1] > 0
        assert result.metrics["faults.requests_blackholed"] > 0
        assert result.metrics["client.retry.failed"] > 0


class TestNicDrop:
    def test_burst_drops_are_counted_and_window_closes(self, sim, streams):
        system = build_system("altocumulus", sim, streams, 4)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=0.0, kind="nic_drop", target=0, magnitude=1.0,
                       duration_ns=20_000.0),
        ), retry=RETRY)
        result = run_faulted(system, sim, streams, plan)
        m = result.metrics
        assert m["faults.nic_burst_dropped"] > 0
        # Every logical request still terminates exactly once.
        assert m["client.retry.succeeded"] + m["client.retry.failed"] == 600


class TestCoreStall:
    def test_slowdown_applied_and_reset(self, sim, streams):
        system = build_system("rss", sim, streams, 2)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=10_000.0, kind="core_stall", target=0,
                       subtarget=1, magnitude=25.0, duration_ns=30_000.0),
        ), retry=RETRY)
        probes = {}
        sim.schedule_at(11_000.0, lambda: probes.update(
            during=system.cores[1].slowdown))
        sim.schedule_at(41_000.0, lambda: probes.update(
            after=system.cores[1].slowdown))
        result = run_faulted(system, sim, streams, plan, rate=1.5e6)
        assert probes["during"] == 25.0
        assert probes["after"] == 1.0
        assert result.metrics["faults.core_stalls"] == 1

    def test_core_index_out_of_range_raises(self, sim, streams):
        system = build_system("rss", sim, streams, 2)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=0.0, kind="core_stall", target=0, subtarget=9,
                       magnitude=2.0, duration_ns=100.0),
        ), retry=RETRY)
        with pytest.raises(Exception):
            run_faulted(system, sim, streams, plan, n=10)


class TestTorFaults:
    def test_degrade_slows_port_then_restores(self, sim, streams):
        rack = make_rack(sim, streams)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=10_000.0, kind="tor_degrade", target=0,
                       magnitude=0.25, duration_ns=20_000.0),
        ), retry=RETRY)
        probes = {}
        sim.schedule_at(
            11_000.0,
            lambda: probes.update(during=rack.switch.serialization_ns(300, 0)),
        )
        result = run_faulted(rack, sim, streams, plan)
        assert probes["during"] == 4.0 * rack.switch.serialization_ns(300)
        assert rack.switch.serialization_ns(300, 0) == \
            rack.switch.serialization_ns(300)
        assert result.metrics["faults.tor_degrades"] == 1

    def test_partition_silently_drops_and_heals(self, sim, streams):
        rack = make_rack(sim, streams, policy="hash")
        plan = FaultPlan(events=(
            FaultEvent(time_ns=0.0, kind="tor_partition", target=1,
                       duration_ns=50_000.0),
        ), retry=RETRY)
        result = run_faulted(rack, sim, streams, plan)
        m = result.metrics
        assert m["faults.tor_partitions"] == 1
        assert m["faults.partition_dropped"] > 0
        assert m["faults.partition_dropped"] == rack.switch.partition_dropped
        # Partition losses are silent in-fabric: not rack terminals.
        assert rack.stats.dropped == 0
        assert not rack.switch.port_partitioned(1)

    def test_tor_faults_skip_on_single_server(self, sim, streams):
        system = build_system("altocumulus", sim, streams, 4)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=0.0, kind="tor_degrade", target=0,
                       magnitude=0.5, duration_ns=1_000.0),
            FaultEvent(time_ns=0.0, kind="tor_partition", target=0,
                       duration_ns=1_000.0),
        ), retry=RETRY)
        result = run_faulted(system, sim, streams, plan, n=50)
        assert result.metrics["faults.events_skipped"] == 4
        assert result.metrics["faults.events_fired"] == 0


class TestManagerFailure:
    def test_orphans_redispatch_to_peer_managers(self, sim, streams):
        system = build_system("altocumulus", sim, streams, 32)  # 2 groups
        plan = FaultPlan(events=(
            FaultEvent(time_ns=40_000.0, kind="manager_fail", target=0,
                       subtarget=0),
        ), retry=RETRY)
        probes = {}

        def at_recovery():
            # The contract: manager state is lost *instantaneously* --
            # in-flight descriptors must read zero right at the fault,
            # not merely after the run drains.
            probes["in_flight"] = system.managers[0].in_flight_descriptors
            probes["mr_entries"] = len(system.managers[0].mrs.entries)

        sim.schedule_at(40_000.1, at_recovery)
        result = run_faulted(system, sim, streams, plan, n=2_000, rate=28e6)
        assert probes["in_flight"] == 0
        assert probes["mr_entries"] == 0
        m = result.metrics
        assert m["faults.manager_fails"] == 1
        # Dead-letter accounting is exact: every descriptor the dead
        # manager held was either redispatched to a peer or dropped.
        assert m["faults.orphans_redispatched"] >= 0
        assert m["client.retry.succeeded"] + m["client.retry.failed"] == 2_000

    def test_manager_fail_skipped_on_non_altocumulus(self, sim, streams):
        system = build_system("rss", sim, streams, 2)
        plan = FaultPlan(events=(
            FaultEvent(time_ns=0.0, kind="manager_fail", target=0),
        ), retry=RETRY)
        result = run_faulted(system, sim, streams, plan, n=50, rate=1e6)
        assert result.metrics["faults.events_skipped"] == 1

    def test_dead_nack_descriptors_counted(self, sim, streams):
        """Descriptors mid-MIGRATE when their manager dies come back as
        NACKs addressed to a dead transfer id; they are dropped and
        audited, never double-enqueued."""
        result = quick_run(
            "altocumulus", n_cores=32, rate_rps=28e6, mean_service_ns=1000.0,
            n_requests=4_000, seed=11,
            faults=FaultPlan(events=(
                FaultEvent(time_ns=50_000.0, kind="manager_fail", target=0,
                           subtarget=0),
                FaultEvent(time_ns=80_000.0, kind="manager_fail", target=0,
                           subtarget=1),
            ), retry=RETRY),
        )
        m = result.metrics
        assert m["faults.manager_fails"] == 2
        conserved = (
            m["client.retry.completed"] + m["client.retry.dropped"]
            + m["client.retry.timed_out"] + m["client.retry.in_flight_at_end"]
        )
        assert conserved == m["client.retry.injected"] + m["client.retry.retries"]


class TestResponseFencing:
    def test_responses_from_downed_server_are_lost(self, sim, streams):
        """Requests in flight inside a server when it crashes complete
        server-side, but their responses never reach the client."""
        rack = make_rack(sim, streams, policy="round_robin")
        plan = FaultPlan(events=(
            FaultEvent(time_ns=20_000.0, kind="server_crash", target=0,
                       duration_ns=60_000.0),
        ), retry=RETRY)
        result = run_faulted(rack, sim, streams, plan, rate=3e6)
        m = result.metrics
        assert m["faults.responses_lost"] > 0
        # Every logical request still reaches exactly one verdict, and
        # any double-service is audited by the dedup layer.
        assert m["client.retry.succeeded"] + m["client.retry.failed"] == 600
        assert m["client.retry.duplicates"] == m["kvs.dedup.duplicates"]


class TestIngressWiring:
    def test_single_server_ingress_is_guarded(self, sim, streams):
        system = build_system("rss", sim, streams, 2)
        plan = FaultPlan(events=(), retry=RETRY)
        injector = FaultInjector(sim, streams, plan, system)
        assert injector.ingress == injector.guarded_offer

    def test_rack_ingress_is_rack_offer(self, sim, streams):
        rack = make_rack(sim, streams)
        plan = FaultPlan(events=(), retry=RETRY)
        injector = FaultInjector(sim, streams, plan, rack)
        assert injector.ingress == rack.offer
        # The injector installed its shared health view everywhere.
        assert rack.health is injector.health
        assert rack.policy.health is injector.health

    def test_injected_run_keeps_registry_namespaced(self, sim, streams):
        """faults.* and client.retry.* appear only on faulted runs (the
        pinned metrics schema of plain runs must stay untouched)."""
        result = quick_run("altocumulus", n_cores=4, rate_rps=1e6,
                           n_requests=200, seed=3)
        assert not any(k.startswith(("faults.", "client.retry."))
                       for k in result.metrics)
