"""Unit tests for the fault-injection data layer: plans and their
validation/expansion/serialization, the health view steering policies
consult, and the KVS-layer duplicate detector."""

import json

import pytest

from repro.faults import (
    ALL_HEALTHY,
    FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    HealthView,
    PAIRED_KINDS,
    RECOVERY_KINDS,
    RetryPolicy,
)
from repro.kvs.dedup import DuplicateDetector
from repro.telemetry import MetricRegistry


class TestRetryPolicy:
    def test_defaults_are_valid(self):
        retry = RetryPolicy()
        assert retry.timeout_ns > 0
        assert retry.max_retries >= 0

    @pytest.mark.parametrize("kwargs", [
        {"timeout_ns": 0.0},
        {"timeout_ns": -1.0},
        {"max_retries": -1},
        {"backoff_base_ns": 10.0, "backoff_cap_ns": 5.0},  # cap < base
        {"backoff_cap_ns": -5.0},
        {"jitter": -0.1},
        {"jitter": 1.5},
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(FaultPlanError):
            RetryPolicy(**kwargs)

    def test_backoff_doubles_then_caps(self):
        retry = RetryPolicy(backoff_base_ns=10_000.0, backoff_cap_ns=35_000.0)
        assert retry.backoff_ns(1) == 10_000.0
        assert retry.backoff_ns(2) == 20_000.0
        assert retry.backoff_ns(3) == 35_000.0  # capped, not 40_000
        assert retry.backoff_ns(4) == 35_000.0


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time_ns=0.0, kind="gamma_ray")

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time_ns=-1.0, kind="server_crash")

    def test_duration_only_on_paired_kinds(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time_ns=0.0, kind="manager_fail", duration_ns=10.0)

    @pytest.mark.parametrize("kind,magnitude", [
        ("core_stall", 0.5),   # a stall must slow down, not speed up
        ("nic_drop", 0.0),     # drop probability must be in (0, 1]
        ("nic_drop", 1.5),
        ("tor_degrade", 1.0),  # a degrade at factor 1.0 is a no-op
        ("tor_degrade", 0.0),
    ])
    def test_magnitude_ranges(self, kind, magnitude):
        with pytest.raises(FaultPlanError):
            FaultEvent(time_ns=0.0, kind=kind, magnitude=magnitude,
                       duration_ns=10.0)

    def test_every_paired_kind_has_a_recovery(self):
        assert set(RECOVERY_KINDS.values()) == set(PAIRED_KINDS)
        assert set(PAIRED_KINDS) | set(RECOVERY_KINDS) <= set(FAULT_KINDS)


class TestFaultPlan:
    def test_duration_expands_to_recovery_event(self):
        plan = FaultPlan(events=(
            FaultEvent(time_ns=100.0, kind="server_crash", target=2,
                       duration_ns=50.0),
        ))
        expanded = plan.expanded_events()
        assert [(e.time_ns, e.kind) for e in expanded] == [
            (100.0, "server_crash"), (150.0, "server_recover"),
        ]
        assert expanded[1].target == 2

    def test_expansion_is_time_sorted_and_stable(self):
        plan = FaultPlan(events=(
            FaultEvent(time_ns=200.0, kind="manager_fail", target=0),
            FaultEvent(time_ns=100.0, kind="nic_drop", target=1,
                       magnitude=0.5, duration_ns=50.0),
            FaultEvent(time_ns=100.0, kind="server_crash", target=0,
                       duration_ns=300.0),
        ))
        kinds = [(e.time_ns, e.kind) for e in plan.expanded_events()]
        assert kinds == [
            (100.0, "nic_drop"),        # declaration order breaks the tie
            (100.0, "server_crash"),
            (150.0, "nic_drop_stop"),
            (200.0, "manager_fail"),
            (400.0, "server_recover"),
        ]

    def test_json_round_trip(self):
        plan = FaultPlan(
            events=(
                FaultEvent(time_ns=1_000.0, kind="core_stall", target=1,
                           subtarget=3, magnitude=10.0, duration_ns=500.0),
                FaultEvent(time_ns=2_000.0, kind="manager_fail", target=0),
            ),
            retry=RetryPolicy(timeout_ns=9_000.0, max_retries=2, jitter=0.25),
        )
        clone = FaultPlan.from_json(plan.to_json())
        assert clone == plan
        # to_dict output is plain JSON data.
        json.dumps(plan.to_dict())

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"events": [], "retry": {}, "oops": 1})

    def test_events_list_coerced_to_tuple(self):
        plan = FaultPlan(events=[
            FaultEvent(time_ns=0.0, kind="manager_fail", target=0),
        ])
        assert isinstance(plan.events, tuple)


class TestHealthView:
    def test_all_healthy_singleton_never_impaired(self):
        assert not ALL_HEALTHY.impaired
        assert ALL_HEALTHY.usable(123)
        assert ALL_HEALTHY.penalty(0) == 0.0

    def test_down_and_recover(self):
        health = HealthView(4)
        assert not health.impaired
        health.set_down(1, True)
        assert health.impaired
        assert not health.usable(1)
        assert health.usable_servers() == [0, 2, 3]
        health.set_down(1, False)
        assert not health.impaired
        assert health.usable(1)

    def test_degraded_nests(self):
        health = HealthView(2, degraded_penalty=5.0)
        health.add_degraded(0)
        health.add_degraded(0)
        assert health.impaired and health.degraded(0)
        assert health.penalty(0) == 5.0
        assert health.usable(0)  # degraded is usable, just penalized
        health.remove_degraded(0)
        assert health.degraded(0)  # one layer still active
        health.remove_degraded(0)
        assert not health.impaired

    def test_remove_degraded_below_zero_raises(self):
        health = HealthView(2)
        with pytest.raises(ValueError):
            health.remove_degraded(0)


class TestDuplicateDetector:
    def test_counts_unique_and_duplicates(self):
        detector = DuplicateDetector(MetricRegistry())
        assert detector.observe(7) is False
        assert detector.observe(7) is True
        assert detector.observe(8) is False
        assert detector.unique == 2
        assert detector.duplicates == 1
        assert detector.seen(7) and not detector.seen(9)

    def test_responses_conserved(self):
        detector = DuplicateDetector(MetricRegistry())
        observed = [detector.observe(i % 3) for i in range(10)]
        assert detector.unique + detector.duplicates == len(observed)
