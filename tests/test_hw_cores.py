"""Unit tests for the core execution model."""

import pytest

from repro.hw.cores import Core
from tests.conftest import make_request


class TestRunToCompletion:
    def test_completion_at_service_time(self, sim):
        done = []
        core = Core(sim, 0, lambda c, r: done.append((sim.now, r)))
        req = make_request(service_time=500.0)
        core.assign(req)
        sim.run()
        assert done[0][0] == 500.0
        assert req.finished == 500.0
        assert req.remaining == 0.0
        assert core.completed == 1

    def test_startup_delays_completion_and_start(self, sim):
        done = []
        core = Core(sim, 0, lambda c, r: done.append(sim.now))
        req = make_request(service_time=500.0)
        core.assign(req, startup_ns=100.0)
        sim.run()
        assert done == [600.0]
        assert req.started == 100.0
        assert req.extra_latency == 100.0

    def test_busy_while_running(self, sim):
        core = Core(sim, 0, lambda c, r: None)
        core.assign(make_request(service_time=100.0))
        assert core.busy
        sim.run()
        assert not core.busy

    def test_double_assign_rejected(self, sim):
        core = Core(sim, 0, lambda c, r: None)
        core.assign(make_request())
        with pytest.raises(RuntimeError):
            core.assign(make_request(req_id=1))

    def test_started_not_reset_by_second_slice(self, sim):
        requeued = []
        core = Core(sim, 0, lambda c, r: None,
                    on_preempt=lambda c, r: requeued.append(r))
        req = make_request(service_time=1000.0)
        core.assign(req, quantum_ns=400.0)
        sim.run()
        first_start = req.started
        core.assign(req, quantum_ns=400.0)
        sim.run()
        assert req.started == first_start


class TestPreemption:
    def test_quantum_preempts_long_request(self, sim):
        preempted = []
        core = Core(sim, 0, lambda c, r: None,
                    on_preempt=lambda c, r: preempted.append(r))
        req = make_request(service_time=1000.0)
        core.assign(req, quantum_ns=300.0)
        sim.run()
        assert preempted == [req]
        assert req.remaining == 700.0
        assert req.finished is None
        assert core.preemptions == 1

    def test_short_request_not_preempted(self, sim):
        done = []
        core = Core(sim, 0, lambda c, r: done.append(r))
        req = make_request(service_time=100.0)
        core.assign(req, quantum_ns=300.0)
        sim.run()
        assert done == [req]
        assert core.preemptions == 0

    def test_switch_overhead_charged_on_preemption_only(self, sim):
        preempted = []
        core = Core(sim, 0, lambda c, r: None,
                    on_preempt=lambda c, r: preempted.append(sim.now))
        req = make_request(service_time=1000.0)
        core.assign(req, quantum_ns=300.0, switch_overhead_ns=50.0)
        sim.run()
        assert preempted == [350.0]
        assert req.extra_latency == 50.0

    def test_request_completes_across_quanta(self, sim):
        done = []

        def requeue(core, request):
            core.assign(request, quantum_ns=300.0)

        core = Core(sim, 0, lambda c, r: done.append(sim.now),
                    on_preempt=requeue)
        core.assign(make_request(service_time=1000.0), quantum_ns=300.0)
        sim.run()
        assert done == [1000.0]

    def test_preempt_without_handler_raises(self, sim):
        core = Core(sim, 0, lambda c, r: None)
        core.assign(make_request(service_time=1000.0), quantum_ns=100.0)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_invalid_quantum_rejected(self, sim):
        core = Core(sim, 0, lambda c, r: None)
        with pytest.raises(ValueError):
            core.assign(make_request(), quantum_ns=0.0)


class TestAccounting:
    def test_busy_ns_tracks_execution(self, sim):
        core = Core(sim, 0, lambda c, r: None)
        core.assign(make_request(service_time=400.0))
        sim.run()
        assert core.busy_ns == 400.0

    def test_utilization(self, sim):
        core = Core(sim, 0, lambda c, r: None)
        core.assign(make_request(service_time=400.0))
        sim.run()
        assert core.utilization(800.0) == 0.5
        assert core.utilization(0.0) == 0.0
