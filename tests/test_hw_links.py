"""Unit tests for PCIe and QPI link models and the coherence cost model."""

import numpy as np
import pytest

from repro.hw.coherence import CoherenceModel
from repro.hw.constants import DEFAULT_CONSTANTS, HwConstants
from repro.hw.pcie import PcieLink
from repro.hw.qpi import QpiLink


class TestConstants:
    def test_paper_values(self):
        c = DEFAULT_CONSTANTS
        assert c.nic_terminate_ns == 30.0
        assert c.noc_hop_ns == 3.0
        assert c.qpi_ns == 150.0
        assert (c.pcie_min_ns, c.pcie_max_ns) == (200.0, 800.0)
        assert c.coherence_msg_cycles == 70
        assert c.mr_entry_bytes == 14

    def test_cycle_conversions(self):
        c = DEFAULT_CONSTANTS
        assert c.coherence_msg_ns == 35.0  # 70 cycles @ 2 GHz
        assert c.msr_access_ns == 50.0  # 100 cycles @ 2 GHz
        assert c.isa_access_ns < c.msr_access_ns

    def test_custom_frequency(self):
        c = HwConstants(freq_ghz=1.0)
        assert c.coherence_msg_ns == 70.0


class TestPcie:
    def test_minimum_at_zero_bytes(self):
        assert PcieLink().transfer_ns(0) == 200.0

    def test_maximum_at_full_size(self):
        link = PcieLink()
        assert link.transfer_ns(DEFAULT_CONSTANTS.pcie_full_size_bytes) == 800.0

    def test_saturates_beyond_full_size(self):
        assert PcieLink().transfer_ns(1 << 20) == 800.0

    def test_monotone_in_size(self):
        link = PcieLink()
        sizes = [0, 64, 300, 1024, 2048]
        values = [link.transfer_ns(s) for s in sizes]
        assert values == sorted(values)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            PcieLink().transfer_ns(-1)


class TestQpi:
    def test_same_socket_free(self):
        link = QpiLink(cores_per_socket=64)
        assert link.crossing_ns(0, 63) == 0.0

    def test_cross_socket_costs(self):
        link = QpiLink(cores_per_socket=64)
        assert link.crossing_ns(0, 64) == 150.0
        assert link.crossing_ns(200, 10) == 150.0

    def test_socket_of(self):
        link = QpiLink(cores_per_socket=64)
        assert link.socket_of(0) == 0
        assert link.socket_of(64) == 1
        assert link.socket_of(255) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            QpiLink(cores_per_socket=0)
        with pytest.raises(ValueError):
            QpiLink().socket_of(-1)


class TestCoherence:
    def test_dispatch_floor(self):
        assert CoherenceModel().dispatch_ns() == 35.0

    def test_steal_cost_in_published_range(self):
        model = CoherenceModel()
        rng = np.random.default_rng(0)
        for _ in range(100):
            cost = model.steal_ns(rng)
            assert 200.0 <= cost <= 400.0

    def test_interrupt_cost(self):
        assert CoherenceModel().interrupt_ns() == 1000.0

    def test_shared_cache_update_scales_with_readers(self):
        model = CoherenceModel()
        assert model.shared_cache_update_ns(1) < model.shared_cache_update_ns(15)
        with pytest.raises(ValueError):
            model.shared_cache_update_ns(-1)
