"""Unit tests for the memory-bandwidth contention model."""

import pytest

from repro.hw.memory import MemoryBandwidthModel


def make_model(sim, **kwargs):
    defaults = dict(bandwidth_bytes_per_ns=100.0, idle_latency_ns=80.0,
                    window_ns=1_000.0)
    defaults.update(kwargs)
    return MemoryBandwidthModel(sim, **defaults)


class TestAccess:
    def test_idle_access_costs_latency_plus_transfer(self, sim):
        model = make_model(sim)
        # 512 B at 100 B/ns = 5.12 ns transfer + 80 ns idle latency.
        assert model.access(512) == pytest.approx(80.0 + 5.12)

    def test_zero_byte_access_costs_idle_latency(self, sim):
        assert make_model(sim).access(0) == 80.0

    def test_contention_inflates_latency(self, sim):
        model = make_model(sim)
        first = model.access(40_000)  # claims 40% of the window
        loaded = model.access(40_000)
        assert loaded > first

    def test_inflation_capped(self, sim):
        model = make_model(sim, max_inflation=5.0)
        for _ in range(50):
            model.access(50_000)  # saturate the window
        cost = model.access(10_000)
        assert cost <= 80.0 + 10_000 / 100.0 * 5.0 + 1e-9

    def test_window_expiry_restores_idle_cost(self, sim):
        model = make_model(sim)
        model.access(90_000)  # near-saturate
        sim.schedule(2_000.0, lambda: None)
        sim.run()  # advance past the window
        assert model.utilization() == 0.0
        assert model.access(512) == pytest.approx(80.0 + 5.12)


class TestAccounting:
    def test_utilization_bounds(self, sim):
        model = make_model(sim)
        assert model.utilization() == 0.0
        for _ in range(10):
            model.access(50_000)
        assert model.utilization() == 1.0

    def test_totals(self, sim):
        model = make_model(sim)
        model.access(100)
        model.access(200)
        assert model.total_bytes == 300
        assert model.accesses == 2

    def test_achieved_bandwidth(self, sim):
        model = make_model(sim)
        model.access(1_000)
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert model.achieved_bandwidth_bytes_per_ns() == pytest.approx(10.0)


class TestValidation:
    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            MemoryBandwidthModel(sim, bandwidth_bytes_per_ns=0.0)
        with pytest.raises(ValueError):
            MemoryBandwidthModel(sim, idle_latency_ns=-1.0)
        with pytest.raises(ValueError):
            MemoryBandwidthModel(sim, window_ns=0.0)
        with pytest.raises(ValueError):
            MemoryBandwidthModel(sim, max_inflation=0.5)
        with pytest.raises(ValueError):
            make_model(sim).access(-1)
