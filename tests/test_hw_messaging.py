"""Unit tests for the manager-tile messaging protocol (Table II)."""

import pytest

from repro.hw.constants import HwConstants
from repro.hw.messaging import ManagerTileHw
from repro.hw.noc import Noc
from repro.hw.topology import MeshTopology
from tests.conftest import make_request


def make_tiles(sim, n=3, mr_capacity=None, constants=None, **callbacks):
    """Build ``n`` connected manager tiles on one NoC.

    Callbacks apply to every tile and receive (tile_index, *payload).
    """
    constants = constants or HwConstants()
    noc = Noc(sim, MeshTopology(n * 16))
    tiles = []
    for i in range(n):
        def bind(idx):
            return {
                "on_migrate_in": lambda reqs, src: callbacks.get(
                    "migrate_in", lambda *a: None)(idx, reqs, src),
                "on_update": lambda src, q: callbacks.get(
                    "update", lambda *a: None)(idx, src, q),
                "on_migrate_rejected": lambda reqs, dst: callbacks.get(
                    "rejected", lambda *a: None)(idx, reqs, dst),
            }

        tiles.append(
            ManagerTileHw(
                sim, noc, tile_id=i * 16, manager_index=i,
                constants=constants, mr_capacity=mr_capacity, **bind(i)
            )
        )
    for t in tiles:
        t.connect(tiles)
    return tiles


class TestMigrate:
    def test_descriptors_arrive_at_destination_tail(self, sim):
        received = []
        tiles = make_tiles(sim, migrate_in=lambda i, reqs, src: received.append(
            (i, [r.req_id for r in reqs], src)))
        batch = [make_request(req_id=i) for i in range(3)]
        assert tiles[0].send_migrate(1, batch)
        sim.run()
        assert received == [(1, [0, 1, 2], 0)]
        assert [r.req_id for r in tiles[1].mrs.peek_all()] == [0, 1, 2]

    def test_migration_counter_incremented(self, sim):
        tiles = make_tiles(sim)
        batch = [make_request(req_id=0)]
        tiles[0].send_migrate(1, batch)
        sim.run()
        assert batch[0].migrations == 1

    def test_ack_clears_pending(self, sim):
        tiles = make_tiles(sim)
        tiles[0].send_migrate(1, [make_request()])
        assert tiles[0].in_flight_descriptors == 1
        sim.run()
        assert tiles[0].in_flight_descriptors == 0
        assert tiles[0].stats.migrates_acked == 1
        assert tiles[0].stats.migrates_nacked == 0

    def test_nack_when_destination_mrs_full(self, sim):
        rejected = []
        tiles = make_tiles(
            sim, mr_capacity=1,
            rejected=lambda i, reqs, dst: rejected.append((i, len(reqs))))
        tiles[1].mrs.enqueue(make_request(req_id=99))  # destination full
        batch = [make_request(req_id=0), make_request(req_id=1)]
        tiles[0].send_migrate(1, batch)
        sim.run()
        assert tiles[0].stats.migrates_nacked == 1
        # Batch restored at the source, nothing lost.
        assert [r.req_id for r in tiles[0].mrs.peek_all()] == [0, 1]
        assert rejected == [(0, 2)]
        # The rejected requests were never migrated.
        assert all(r.migrations == 0 for r in batch)

    def test_send_backpressure_when_fifo_small(self, sim):
        constants = HwConstants(send_fifo_entries=2)
        tiles = make_tiles(sim, constants=constants)
        big_batch = [make_request(req_id=i) for i in range(3)]
        assert not tiles[0].send_migrate(1, big_batch)
        assert tiles[0].stats.send_backpressure == 1

    def test_migrate_to_self_rejected(self, sim):
        tiles = make_tiles(sim)
        with pytest.raises(ValueError):
            tiles[0].send_migrate(0, [make_request()])

    def test_empty_batch_is_noop(self, sim):
        tiles = make_tiles(sim)
        assert tiles[0].send_migrate(1, [])
        assert tiles[0].stats.migrates_sent == 0


class TestUpdate:
    def test_broadcast_reaches_all_other_managers(self, sim):
        updates = []
        tiles = make_tiles(
            sim, n=4, update=lambda i, src, q: updates.append((i, src, q)))
        tiles[2].broadcast_update(17)
        sim.run()
        assert sorted(updates) == [(0, 2, 17), (1, 2, 17), (3, 2, 17)]
        assert tiles[2].stats.updates_sent == 3

    def test_update_does_not_echo_to_sender(self, sim):
        updates = []
        tiles = make_tiles(sim, update=lambda i, src, q: updates.append(i))
        tiles[0].broadcast_update(5)
        sim.run()
        assert 0 not in updates


class TestConfig:
    def test_predict_config_writes_prs_without_noc_traffic(self, sim):
        tiles = make_tiles(sim)
        before = tiles[0].noc.stats.messages
        tiles[0].configure(period_ns=100.0, bulk=40)
        assert tiles[0].prs.period_ns == 100.0
        assert tiles[0].prs.bulk == 40
        assert tiles[0].noc.stats.messages == before


class TestConservation:
    def test_no_request_lost_in_crossfire(self, sim):
        """Concurrent migrations in both directions preserve every
        descriptor exactly once."""
        tiles = make_tiles(sim)
        batch_a = [make_request(req_id=i) for i in range(5)]
        batch_b = [make_request(req_id=100 + i) for i in range(5)]
        tiles[0].send_migrate(1, batch_a)
        tiles[1].send_migrate(0, batch_b)
        sim.run()
        ids_at_0 = {r.req_id for r in tiles[0].mrs.peek_all()}
        ids_at_1 = {r.req_id for r in tiles[1].mrs.peek_all()}
        assert ids_at_0 == {100, 101, 102, 103, 104}
        assert ids_at_1 == {0, 1, 2, 3, 4}


class TestProtocolProperties:
    def test_random_interleavings_conserve_descriptors(self, sim):
        """Property-flavoured stress: arbitrary interleavings of
        MIGRATE traffic between three bounded tiles never lose or
        duplicate a descriptor."""
        import numpy as np

        rng = np.random.default_rng(7)
        tiles = make_tiles(sim, n=3, mr_capacity=12)
        population = []
        for i in range(24):
            r = make_request(req_id=i)
            population.append(r)
            tiles[i % 3].mrs.enqueue(r)
        for step in range(60):
            src = int(rng.integers(0, 3))
            dst = int(rng.integers(0, 3))
            if src == dst:
                continue
            batch = tiles[src].mrs.dequeue_tail_where(
                int(rng.integers(1, 4)), lambda r: True
            )
            if not batch:
                continue
            if not tiles[src].send_migrate(dst, batch):
                for r in batch:
                    tiles[src].mrs.enqueue_reserved(r)
            if step % 7 == 0:
                sim.run(until=sim.now + 50.0)
        sim.run(until=sim.now + 10_000.0)
        everywhere = [r.req_id for t in tiles for r in t.mrs.peek_all()]
        assert sorted(everywhere) == [r.req_id for r in population]
        for t in tiles:
            assert t.in_flight_descriptors == 0
