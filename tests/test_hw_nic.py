"""Unit tests for NIC steering and delivery models."""

import numpy as np
import pytest

from repro.hw.nic import HwTerminatedDelivery, PcieDelivery, RssSteering
from tests.conftest import make_request


class TestDelivery:
    def test_hw_terminated_is_flat_30ns(self):
        delivery = HwTerminatedDelivery()
        assert delivery.delivery_ns(make_request(size_bytes=64)) == 30.0
        assert delivery.delivery_ns(make_request(size_bytes=1500)) == 30.0

    def test_pcie_adds_size_dependent_transfer(self):
        delivery = PcieDelivery()
        small = delivery.delivery_ns(make_request(size_bytes=64))
        large = delivery.delivery_ns(make_request(size_bytes=2048))
        assert small == pytest.approx(30.0 + 200.0 + 64 / 2048 * 600.0)
        assert large == 30.0 + 800.0
        assert small < large


class TestSteering:
    def test_connection_policy_is_sticky(self):
        steering = RssSteering(8, policy="connection")
        r = make_request(connection=42)
        assert steering.pick_queue(r) == steering.pick_queue(r)

    def test_connection_policy_separates_flows(self):
        steering = RssSteering(8, policy="connection")
        queues = {
            steering.pick_queue(make_request(connection=c)) for c in range(64)
        }
        assert len(queues) > 4  # many flows spread over many queues

    def test_round_robin_rotates(self):
        steering = RssSteering(4, policy="round_robin")
        picks = [steering.pick_queue(make_request()) for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_random_policy_covers_queues(self):
        steering = RssSteering(4, policy="random",
                               rng=np.random.default_rng(0))
        picks = {steering.pick_queue(make_request()) for _ in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_random_requires_rng(self):
        with pytest.raises(ValueError):
            RssSteering(4, policy="random")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            RssSteering(4, policy="magic")

    def test_zero_queues_rejected(self):
        with pytest.raises(ValueError):
            RssSteering(0)
