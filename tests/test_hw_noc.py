"""Unit tests for the NoC transport."""

import pytest

from repro.hw.noc import FLIT_BYTES, Noc, NocMessage
from repro.hw.topology import MeshTopology


def make_noc(sim, **kwargs):
    return Noc(sim, MeshTopology(16), per_hop_ns=3.0, flit_ns=1.0, **kwargs)


class TestLatency:
    def test_single_flit_latency(self, sim):
        noc = make_noc(sim)
        msg = NocMessage(src=0, dst=1, payload=None, size_bytes=8)
        assert noc.latency(msg) == 3.0 + 1.0  # 1 hop + 1 flit

    def test_multi_flit_serialization(self, sim):
        noc = make_noc(sim)
        msg = NocMessage(src=0, dst=15, payload=None, size_bytes=3 * FLIT_BYTES)
        assert noc.latency(msg) == 6 * 3.0 + 3 * 1.0

    def test_zero_byte_message_still_one_flit(self, sim):
        msg = NocMessage(src=0, dst=1, payload=None, size_bytes=0)
        assert msg.flits == 1


class TestDelivery:
    def test_callback_fires_at_latency(self, sim):
        noc = make_noc(sim)
        arrived = []
        msg = NocMessage(src=0, dst=1, payload="hello")
        noc.send(msg, lambda m: arrived.append((sim.now, m.payload)))
        sim.run()
        assert arrived == [(4.0, "hello")]

    def test_endpoint_serialization_delays_bursts(self, sim):
        noc = make_noc(sim)
        times = []
        for _ in range(3):
            noc.send(NocMessage(src=0, dst=1, payload=None),
                     lambda m: times.append(sim.now))
        sim.run()
        # Same wire latency, but the ejection port drains one flit at a
        # time, so deliveries are staggered.
        assert times[0] < times[1] < times[2]

    def test_serialization_disabled(self, sim):
        noc = make_noc(sim, endpoint_serialization=False)
        times = []
        for _ in range(3):
            noc.send(NocMessage(src=0, dst=1, payload=None),
                     lambda m: times.append(sim.now))
        sim.run()
        assert times == [4.0, 4.0, 4.0]

    def test_stats_accumulate(self, sim):
        noc = make_noc(sim)
        noc.send(NocMessage(src=0, dst=1, payload=None, size_bytes=8, vnet=1),
                 lambda m: None)
        noc.send(NocMessage(src=0, dst=2, payload=None, size_bytes=8, vnet=1),
                 lambda m: None)
        sim.run()
        assert noc.stats.messages == 2
        assert noc.stats.bytes == 16
        assert noc.stats.by_vnet[1] == 2
        assert noc.stats.mean_latency_ns > 0


class TestBroadcast:
    def test_broadcast_skips_source(self, sim):
        noc = make_noc(sim)
        received = []
        noc.broadcast(0, [0, 1, 2, 3], payload="q", size_bytes=8,
                      on_delivery=lambda m: received.append(m.dst))
        sim.run()
        assert sorted(received) == [1, 2, 3]

    def test_invalid_latency_rejected(self, sim):
        with pytest.raises(ValueError):
            Noc(sim, MeshTopology(4), per_hop_ns=-1.0)


class TestLinkContention:
    def test_shared_link_serializes(self, sim):
        """Two messages crossing the same link arrive staggered when
        link contention is modelled."""
        noc = make_noc(sim, endpoint_serialization=False,
                       link_contention=True)
        times = []
        # 0 -> 2 and 0 -> 3 share the 0->1 and 1->2 links in a 4x4 mesh.
        noc.send(NocMessage(src=0, dst=3, payload="a", size_bytes=64),
                 lambda m: times.append(("a", sim.now)))
        noc.send(NocMessage(src=0, dst=3, payload="b", size_bytes=64),
                 lambda m: times.append(("b", sim.now)))
        sim.run()
        assert times[0][1] < times[1][1]

    def test_disjoint_routes_do_not_interfere(self, sim):
        noc = make_noc(sim, endpoint_serialization=False,
                       link_contention=True)
        times = {}
        noc.send(NocMessage(src=0, dst=1, payload=None),
                 lambda m: times.__setitem__("right", sim.now))
        noc.send(NocMessage(src=15, dst=14, payload=None),
                 lambda m: times.__setitem__("left", sim.now))
        sim.run()
        assert times["right"] == times["left"]

    def test_uncontended_matches_analytic_latency(self, sim):
        noc = make_noc(sim, endpoint_serialization=False,
                       link_contention=True)
        times = []
        msg = NocMessage(src=0, dst=2, payload=None, size_bytes=8)
        noc.send(msg, lambda m: times.append(sim.now))
        sim.run()
        assert times[0] == noc.latency(msg)

    def test_same_pair_fifo_order(self, sim):
        """Deterministic routing preserves per-pair ordering (Sec. V-B's
        message-ordering requirement)."""
        noc = make_noc(sim, link_contention=True)
        order = []
        for i in range(5):
            noc.send(NocMessage(src=0, dst=15, payload=i),
                     lambda m: order.append(m.payload))
        sim.run()
        assert order == [0, 1, 2, 3, 4]
