"""Unit and property tests for manager-tile register structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.registers import (
    HardwareFifo,
    MigrationRegisterFile,
    ParameterRegisters,
)
from tests.conftest import make_request


class TestHardwareFifo:
    def test_fifo_order(self):
        fifo = HardwareFifo(4)
        reqs = [make_request(req_id=i) for i in range(3)]
        for r in reqs:
            assert fifo.push(r)
        assert [fifo.pop().req_id for _ in range(3)] == [0, 1, 2]

    def test_push_fails_when_full(self):
        fifo = HardwareFifo(2)
        assert fifo.push(make_request(req_id=0))
        assert fifo.push(make_request(req_id=1))
        assert not fifo.push(make_request(req_id=2))
        assert fifo.rejected == 1

    def test_push_many_all_or_nothing(self):
        fifo = HardwareFifo(3)
        fifo.push(make_request(req_id=0))
        batch = [make_request(req_id=i) for i in (1, 2, 3)]
        assert not fifo.push_many(batch)  # 1 + 3 > 3
        assert len(fifo) == 1
        assert fifo.push_many(batch[:2])
        assert len(fifo) == 3

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            HardwareFifo(1).pop()

    def test_high_watermark(self):
        fifo = HardwareFifo(4)
        for i in range(3):
            fifo.push(make_request(req_id=i))
        fifo.pop()
        assert fifo.high_watermark == 3

    def test_free_slots_and_full(self):
        fifo = HardwareFifo(2)
        assert fifo.free_slots() == 2
        fifo.push(make_request())
        fifo.push(make_request(req_id=1))
        assert fifo.full
        assert fifo.free_slots() == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            HardwareFifo(0)


class TestMigrationRegisterFile:
    def test_head_dispatch_order(self):
        mrs = MigrationRegisterFile()
        for i in range(4):
            mrs.enqueue(make_request(req_id=i))
        assert mrs.dequeue_head().req_id == 0
        assert mrs.dequeue_head().req_id == 1

    def test_tail_migration_takes_newest(self):
        mrs = MigrationRegisterFile()
        for i in range(5):
            mrs.enqueue(make_request(req_id=i))
        taken = mrs.dequeue_tail(2)
        # Newest two, returned in arrival order.
        assert [r.req_id for r in taken] == [3, 4]
        assert [r.req_id for r in mrs.peek_all()] == [0, 1, 2]

    def test_tail_migration_clamps_to_size(self):
        mrs = MigrationRegisterFile()
        mrs.enqueue(make_request(req_id=0))
        assert [r.req_id for r in mrs.dequeue_tail(5)] == [0]
        assert len(mrs) == 0

    def test_bounded_capacity_rejects_overflow(self):
        mrs = MigrationRegisterFile(capacity=2)
        assert mrs.enqueue(make_request(req_id=0))
        assert mrs.enqueue(make_request(req_id=1))
        assert not mrs.enqueue(make_request(req_id=2))
        assert mrs.free_slots() == 0

    def test_unbounded_free_slots_is_none(self):
        assert MigrationRegisterFile().free_slots() is None

    def test_bytes_used_at_14_per_entry(self):
        mrs = MigrationRegisterFile()
        for i in range(11):
            mrs.enqueue(make_request(req_id=i))
        # The paper's sizing: 11 entries x 14 B = 154 B per group.
        assert mrs.bytes_used == 154

    def test_dequeue_tail_where_skips_ineligible(self):
        mrs = MigrationRegisterFile()
        for i in range(5):
            r = make_request(req_id=i)
            r.migrations = 1 if i >= 3 else 0  # newest two already migrated
            mrs.enqueue(r)
        taken = mrs.dequeue_tail_where(2, lambda r: r.migrations == 0)
        assert [r.req_id for r in taken] == [1, 2]
        # Ineligible ones stay in place, order preserved.
        assert [r.req_id for r in mrs.peek_all()] == [0, 3, 4]

    def test_peek_tail(self):
        mrs = MigrationRegisterFile()
        for i in range(4):
            mrs.enqueue(make_request(req_id=i))
        assert [r.req_id for r in mrs.peek_tail(2)] == [3, 2]
        assert len(mrs) == 4  # non-destructive

    def test_dequeue_empty_raises(self):
        with pytest.raises(IndexError):
            MigrationRegisterFile().dequeue_head()


class TestParameterRegisters:
    def test_defaults(self):
        prs = ParameterRegisters()
        assert prs.period_ns == 200.0
        assert prs.bulk == 16

    def test_configure_updates_fields(self):
        prs = ParameterRegisters()
        prs.configure(period_ns=100.0, bulk=32, concurrency=4, threshold=55.0)
        assert (prs.period_ns, prs.bulk, prs.concurrency, prs.threshold) == (
            100.0, 32, 4, 55.0,
        )

    def test_unknown_register_rejected(self):
        with pytest.raises(KeyError):
            ParameterRegisters().configure(warp_drive=1)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ParameterRegisters().configure(period_ns=0.0)
        with pytest.raises(ValueError):
            ParameterRegisters().configure(bulk=0)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(0, 1000)),
        st.tuples(st.just("deq_head"), st.just(0)),
        st.tuples(st.just("deq_tail"), st.integers(0, 5)),
    ),
    max_size=40,
))
def test_mr_file_model_based(ops):
    """Property: the MR file behaves exactly like a Python list with
    head/tail removal, and never loses or duplicates descriptors."""
    mrs = MigrationRegisterFile()
    model = []
    counter = [0]
    for op, arg in ops:
        if op == "enq":
            r = make_request(req_id=counter[0])
            counter[0] += 1
            mrs.enqueue(r)
            model.append(r)
        elif op == "deq_head" and model:
            assert mrs.dequeue_head() is model.pop(0)
        elif op == "deq_tail":
            take = min(arg, len(model))
            expected = model[len(model) - take:]
            del model[len(model) - take:]
            assert mrs.dequeue_tail(arg) == expected
        assert [r.req_id for r in mrs.peek_all()] == [r.req_id for r in model]
