"""Unit and property tests for the mesh topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.topology import MeshTopology


class TestShape:
    def test_perfect_square(self):
        mesh = MeshTopology(16)
        assert (mesh.width, mesh.height) == (4, 4)

    def test_non_square_fits_all_tiles(self):
        mesh = MeshTopology(12)
        assert mesh.width * mesh.height >= 12

    def test_single_tile(self):
        mesh = MeshTopology(1)
        assert mesh.hops(0, 0) == 0
        assert mesh.max_hops() == 0
        assert mesh.mean_hops() == 0.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(0)


class TestHops:
    def test_adjacent_tiles_one_hop(self):
        mesh = MeshTopology(16)
        assert mesh.hops(0, 1) == 1
        assert mesh.hops(0, 4) == 1  # vertically adjacent in a 4x4

    def test_corner_to_corner_is_diameter(self):
        mesh = MeshTopology(16)
        assert mesh.hops(0, 15) == mesh.max_hops() == 6

    def test_self_distance_zero(self):
        mesh = MeshTopology(9)
        assert all(mesh.hops(t, t) == 0 for t in range(9))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MeshTopology(4).hops(0, 4)

    def test_mean_hops_between_zero_and_diameter(self):
        mesh = MeshTopology(16)
        assert 0 < mesh.mean_hops() < mesh.max_hops()


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 64),
    data=st.data(),
)
def test_hop_metric_properties(n, data):
    """Property: hop count is a metric (symmetric, triangle inequality)."""
    mesh = MeshTopology(n)
    a = data.draw(st.integers(0, n - 1))
    b = data.draw(st.integers(0, n - 1))
    c = data.draw(st.integers(0, n - 1))
    assert mesh.hops(a, b) == mesh.hops(b, a)
    assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)
    assert (mesh.hops(a, b) == 0) == (a == b)


class TestRoutes:
    def test_route_endpoints(self):
        mesh = MeshTopology(16)
        path = mesh.route(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert len(path) == mesh.hops(0, 15) + 1

    def test_route_is_x_then_y(self):
        mesh = MeshTopology(16)  # 4x4
        # 0 -> 10: x moves first (0->1->2), then y (2->6->10).
        assert mesh.route(0, 10) == [0, 1, 2, 6, 10]

    def test_route_to_self(self):
        assert MeshTopology(9).route(4, 4) == [4]

    def test_route_links_adjacent(self):
        mesh = MeshTopology(16)
        for a, b in mesh.route_links(0, 15):
            assert mesh.hops(a, b) == 1

    def test_route_deterministic(self):
        mesh = MeshTopology(25)
        assert mesh.route(3, 21) == mesh.route(3, 21)
