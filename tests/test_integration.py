"""Cross-module integration tests: conservation, queueing-theory sanity
checks against closed forms, and cross-system comparisons."""

import pytest

from repro.api import available_systems, build_system, quick_run, run_workload
from repro.core.prediction import expected_wait
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Bimodal, Exponential, Fixed


class TestConservation:
    @pytest.mark.parametrize("name", sorted(
        n for n in available_systems() if not n.startswith("custom")
    ))
    def test_every_system_conserves_requests(self, name):
        """No request is lost, duplicated, or double-completed, under a
        dispersive workload that exercises stealing/preemption/migration."""
        sim, streams = Simulator(), RandomStreams(11)
        system = build_system(name, sim, streams, 16)
        result = run_workload(
            system, sim, streams,
            PoissonArrivals(3e6), Bimodal(500.0, 20_000.0, 0.05),
            n_requests=1_000, warmup_fraction=0.0,
        )
        ids = [r.req_id for r in result.requests]
        assert len(ids) == 1_000
        assert len(set(ids)) == 1_000
        assert all(r.finished >= r.arrival for r in result.requests)
        assert all(r.remaining == 0.0 for r in result.requests)


class TestQueueingTheory:
    def test_cfcfs_matches_mmk_wait(self):
        """The ideal c-FCFS system's mean wait tracks the Erlang-C
        closed form (the foundation the prediction model rests on)."""
        k, service_ns, rho = 8, 1_000.0, 0.8
        rate = rho * k / service_ns * 1e9
        result = quick_run(system="cfcfs", n_cores=k, rate_rps=rate,
                           mean_service_ns=service_ns, n_requests=120_000,
                           seed=5, service=Exponential(service_ns))
        measured_wait = result.latency.mean - service_ns - 30.0  # NIC
        predicted = expected_wait(k, rho * k, service_ns)
        assert measured_wait == pytest.approx(predicted, rel=0.15)

    def test_md1_wait_half_of_mm1(self):
        """Deterministic service halves the M/M/1 queueing delay
        (Pollaczek-Khinchine) -- validates service-variance handling."""
        service_ns, rho = 1_000.0, 0.7
        rate = rho / service_ns * 1e9

        def mean_wait(service):
            result = quick_run(system="cfcfs", n_cores=1, rate_rps=rate,
                               n_requests=120_000, seed=6, service=service)
            return result.latency.mean - service.mean - 30.0

        wait_md1 = mean_wait(Fixed(service_ns))
        wait_mm1 = mean_wait(Exponential(service_ns))
        assert wait_md1 == pytest.approx(wait_mm1 / 2, rel=0.2)

    def test_latency_floor_is_delivery_plus_service(self):
        result = quick_run(system="nebula", n_cores=16, rate_rps=1e5,
                           n_requests=2_000, service=Fixed(500.0))
        # 30 ns NIC + 20 ns JBSQ dispatch + 500 ns service.
        assert result.latency.p50 == pytest.approx(550.0, abs=5.0)


class TestCrossSystem:
    def test_preemption_beats_fcfs_tail_on_bimodal(self):
        """nanoPU's bounded quantum must beat Nebula's run-to-completion
        tail under the dispersive mix -- the paper's core JBSQ critique."""
        # 0.5% longs: the longs themselves sit beyond p99, so the tail
        # measures the *shorts* -- blocked behind longs under Nebula,
        # protected by preemption under nanoPU.
        workload = dict(rate_rps=10e6, n_requests=20_000, seed=8,
                        service=Bimodal(500.0, 100_000.0, 0.005))
        nebula = quick_run(system="nebula", n_cores=16, **workload)
        nanopu = quick_run(system="nanopu", n_cores=16, **workload)
        assert nanopu.latency.p99 < nebula.latency.p99

    def test_central_queue_beats_dfcfs_tail(self):
        """c-FCFS pools servers; RSS partitions them.  Pooling wins on
        tail latency at equal load (the motivation for scheduling at
        all)."""
        workload = dict(rate_rps=8e6, n_requests=20_000, seed=8,
                        service=Exponential(1_000.0))
        rss = quick_run(system="rss", n_cores=16, **workload)
        cfcfs = quick_run(system="cfcfs", n_cores=16, **workload)
        assert cfcfs.latency.p99 < rss.latency.p99

    def test_scheduling_overhead_ordering(self):
        """Fig. 3's premise: more per-request overhead, worse latency."""
        from repro.schedulers.jbsq import ideal_cfcfs

        def p99(overhead):
            sim, streams = Simulator(), RandomStreams(4)
            system = ideal_cfcfs(sim, streams, 16,
                                 startup_overhead_ns=overhead)
            result = run_workload(
                system, sim, streams, PoissonArrivals(50e6), Fixed(200.0),
                n_requests=20_000,
            )
            return result.latency.p99

        assert p99(5.0) < p99(360.0)
