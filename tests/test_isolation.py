"""Tests for the application-isolation extension (migration domains)."""

import pytest

from repro.api import run_workload
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.workload.arrivals import PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Fixed


class TestConfig:
    def test_domains_must_partition_groups(self):
        with pytest.raises(ValueError, match="partition"):
            AltocumulusConfig(n_groups=4, group_size=4,
                              migration_domains=[[0, 1], [2]])
        with pytest.raises(ValueError, match="partition"):
            AltocumulusConfig(n_groups=4, group_size=4,
                              migration_domains=[[0, 1], [1, 2, 3]])

    def test_domain_of(self):
        config = AltocumulusConfig(n_groups=4, group_size=4,
                                   migration_domains=[[0, 1, 2], [3]])
        assert config.domain_of(1) == [0, 1, 2]
        assert config.domain_of(3) == [3]
        with pytest.raises(ValueError):
            config.domain_of(9)

    def test_no_domains_means_global(self):
        config = AltocumulusConfig(n_groups=4, group_size=4)
        assert config.domain_of(2) == [0, 1, 2, 3]


class TestIsolation:
    def _run(self, sim, streams, domains):
        config = AltocumulusConfig(
            n_groups=4, group_size=4, bulk=8, concurrency=3,
            offered_load=0.9, migration_domains=domains,
            steering_policy="connection",
        )
        system = AltocumulusSystem(sim, streams, config)
        result = run_workload(
            system, sim, streams, PoissonArrivals(6e6), Fixed(1_000.0),
            n_requests=1_500, warmup_fraction=0.0,
            connections=ConnectionPool(1),  # one hot group
        )
        return system, result

    def test_migrations_never_cross_domains(self, sim, streams):
        system, result = self._run(sim, streams, [[0, 1], [2, 3]])
        hot = next(r.group_id for r in result.requests if r.migrations == 0)
        # Every migrated request ended up inside the hot group's domain.
        config = system.config
        for r in result.requests:
            if r.migrations > 0:
                assert r.group_id in config.domain_of(hot)

    def test_global_domain_uses_all_groups(self, sim, streams):
        system, result = self._run(sim, streams, None)
        if system.total_migrated():
            groups = {r.group_id for r in result.requests}
            assert len(groups) >= 2

    def test_isolated_singleton_never_migrates_out(self, sim, streams):
        """A domain of one group has nowhere to migrate: its requests
        never leave even under overload."""
        system, result = self._run(
            sim, streams, [[0], [1], [2], [3]]
        )
        assert system.total_migrated() == 0
        assert all(r.migrations == 0 for r in result.requests)
