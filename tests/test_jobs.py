"""Unit and integration tests for job-structured requests: degree
distributions, job shapes, the tracker, the job load generator, gang
admission with shadows, sibling steering policies, and the
fan-out-corrected latency estimator.

The compilation contract (trivial shapes are bit-identical to the flat
Request path) is pinned here at the run level; the repo-wide golden
fingerprints in test_determinism.py pin it globally.
"""

import math

import pytest

from repro.api import quick_run, run_workload
from repro.cluster.policies import (
    POLICY_NAMES,
    SpreadJobSteering,
    StickyJobSteering,
    make_policy,
)
from repro.core.prediction import (
    FanoutCorrectedModel,
    ThresholdModel,
    expected_job_latency,
    expected_wait,
    fanout_corrected_model,
    harmonic_number,
)
from repro.schedulers.jbsq import ideal_cfcfs
from repro.sim.rng import RandomStreams
from repro.telemetry import TraceSink
from repro.workload import PoissonArrivals, Exponential, Fixed
from repro.workload.jobs import (
    GANG_SHADOW_STRIDE,
    JOB_TRACE_ID_BASE,
    ChoiceDegree,
    FixedDegree,
    Job,
    JobLoadGenerator,
    JobShape,
    JobTracker,
    UniformDegree,
    make_gang_shadow,
    system_supports_gang,
)
from repro.workload.request import Request
from tests.conftest import make_request


# ----------------------------------------------------------------------
# Degree distributions
# ----------------------------------------------------------------------
class TestDegreeDistributions:
    def test_fixed_degree_draws_nothing_from_the_stream(self):
        rng = RandomStreams(1).get("jobs")
        before = rng.bit_generator.state
        assert FixedDegree(3).sample_many(rng, 100) == [3] * 100
        assert rng.bit_generator.state == before

    def test_fixed_degree_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FixedDegree(0)

    def test_choice_degree_stays_on_support_and_normalizes(self):
        dist = ChoiceDegree((1, 2, 4), (2.0, 1.0, 1.0))
        assert dist.weights == (0.5, 0.25, 0.25)
        draws = dist.sample_many(RandomStreams(2).get("jobs"), 500)
        assert set(draws) <= {1, 2, 4}
        assert dist.max_value == 4
        assert dist.mean == pytest.approx(1 * 0.5 + 2 * 0.25 + 4 * 0.25)

    def test_choice_degree_validation(self):
        with pytest.raises(ValueError):
            ChoiceDegree(())
        with pytest.raises(ValueError):
            ChoiceDegree((0, 2))
        with pytest.raises(ValueError):
            ChoiceDegree((1, 2), (1.0,))
        with pytest.raises(ValueError):
            ChoiceDegree((1, 2), (-1.0, 2.0))

    def test_uniform_degree_bounds(self):
        dist = UniformDegree(2, 5)
        draws = dist.sample_many(RandomStreams(3).get("jobs"), 500)
        assert min(draws) >= 2 and max(draws) <= 5
        assert dist.max_value == 5
        assert dist.mean == pytest.approx(3.5)
        with pytest.raises(ValueError):
            UniformDegree(0, 3)
        with pytest.raises(ValueError):
            UniformDegree(4, 3)

    def test_degree_draws_are_deterministic(self):
        dist = ChoiceDegree((1, 2, 4, 8))
        a = dist.sample_many(RandomStreams(7).get("jobs"), 200)
        b = dist.sample_many(RandomStreams(7).get("jobs"), 200)
        assert a == b


# ----------------------------------------------------------------------
# Job shape
# ----------------------------------------------------------------------
class TestJobShape:
    def test_default_shape_is_trivial(self):
        assert JobShape().is_trivial

    def test_nontrivial_shapes(self):
        assert not JobShape(fanout=FixedDegree(2)).is_trivial
        assert not JobShape(core_demand=FixedDegree(2)).is_trivial
        assert not JobShape(fanout=ChoiceDegree((1,))).is_trivial  # not Fixed

    def test_sibling_connections_validated(self):
        JobShape(sibling_connections="distinct")
        with pytest.raises(ValueError):
            JobShape(sibling_connections="bogus")

    def test_core_demand_limited_by_shadow_stride(self):
        with pytest.raises(ValueError):
            JobShape(core_demand=FixedDegree(GANG_SHADOW_STRIDE + 1))


# ----------------------------------------------------------------------
# Job record + tracker
# ----------------------------------------------------------------------
class TestJobTracker:
    def _job(self, k=2, job_id=0):
        return Job(job_id=job_id, arrival=100.0, fanout=k, core_demand=1,
                   connection=0, sub_ids=tuple(range(10, 10 + k)))

    def test_job_completes_on_last_sibling(self, sim):
        tracker = JobTracker(sim)
        job = self._job(k=3)
        tracker.register(job)
        sim.now = 500.0
        tracker._sub_terminal(10, ok=True)
        tracker._sub_terminal(11, ok=True)
        assert job.finished is None and not job.completed
        sim.now = 900.0
        tracker._sub_terminal(12, ok=True)
        assert job.completed and not job.dropped
        assert job.latency == pytest.approx(800.0)
        assert tracker.completed_jobs == 1 and tracker.dropped_jobs == 0

    def test_any_failed_sibling_drops_the_job(self, sim):
        tracker = JobTracker(sim)
        job = self._job(k=2)
        tracker.register(job)
        sim.now = 300.0
        tracker._sub_terminal(10, ok=False)
        tracker._sub_terminal(11, ok=True)
        assert job.dropped and not job.completed
        assert tracker.dropped_jobs == 1

    def test_unknown_sub_ids_are_ignored(self, sim):
        tracker = JobTracker(sim)
        tracker._sub_terminal(999, ok=True)  # no job registered: no-op
        assert tracker.jobs == []

    def test_latency_raises_before_finish(self, sim):
        job = self._job()
        with pytest.raises(ValueError):
            job.latency

    def test_parent_job_spans_telescope_to_job_latency(self, sim):
        trace = TraceSink(sample_every=1)
        tracker = JobTracker(sim, trace=trace)
        job = self._job(k=2, job_id=5)
        tracker.register(job)
        sim.now = 400.0
        tracker._sub_terminal(10, ok=True)
        sim.now = 700.0
        tracker._sub_terminal(11, ok=True)
        marks = trace.marks_by_request()[JOB_TRACE_ID_BASE + 5]
        phases = [phase for phase, _ in marks]
        assert phases == ["job_scatter", "sub_response", "sub_response",
                          "job_complete"]
        # Telescoping: consecutive-mark deltas sum to the job latency.
        times = [t for _, t in marks]
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert sum(deltas) == pytest.approx(job.latency)


# ----------------------------------------------------------------------
# Job load generator
# ----------------------------------------------------------------------
class TestJobLoadGenerator:
    def _generator(self, sim, seed=7, n_jobs=50, shape=None, sink=None,
                   warmup_fraction=0.0):
        streams = RandomStreams(seed)
        sank = [] if sink is None else sink
        tracker = JobTracker(sim)
        gen = JobLoadGenerator(
            sim, streams, PoissonArrivals(1e6), Exponential(1000.0),
            sink=sank.append if isinstance(sank, list) else sank,
            n_jobs=n_jobs,
            shape=shape or JobShape(fanout=ChoiceDegree((1, 2, 4))),
            tracker=tracker, warmup_fraction=warmup_fraction,
        )
        return gen, sank, tracker

    def test_total_subrequests_known_at_construction(self, sim):
        gen, _, _ = self._generator(sim)
        assert gen.total_subrequests == sum(gen._fanouts)
        assert len(gen._fanouts) == 50

    def test_shapes_are_deterministic_per_seed(self, sim, sim2=None):
        a, _, _ = self._generator(sim, seed=11)
        b, _, _ = self._generator(sim, seed=11)
        c, _, _ = self._generator(sim, seed=12)
        assert a._fanouts == b._fanouts
        assert a._fanouts != c._fanouts

    def test_siblings_scatter_at_one_instant(self, sim):
        gen, sank, _ = self._generator(sim)
        gen.start()
        sim.run(until=1e12)
        assert len(sank) == gen.total_subrequests
        for job in gen.jobs:
            siblings = [r for r in sank if r.job_id == job.job_id]
            assert len(siblings) == job.fanout
            assert {r.arrival for r in siblings} == {job.arrival}
            assert [r.sibling_index for r in siblings] == list(range(job.fanout))

    def test_shared_connections_pin_siblings_to_one_flow(self, sim):
        shape = JobShape(fanout=FixedDegree(4), sibling_connections="shared")
        gen, sank, _ = self._generator(sim, shape=shape)
        gen.start()
        sim.run(until=1e12)
        for job in gen.jobs:
            conns = {r.connection for r in sank if r.job_id == job.job_id}
            assert len(conns) == 1

    def test_distinct_connections_draw_per_sibling(self, sim):
        shape = JobShape(fanout=FixedDegree(4), sibling_connections="distinct")
        gen, sank, _ = self._generator(sim, shape=shape)
        gen.start()
        sim.run(until=1e12)
        # With a pool sized to total_subrequests, at least one job must
        # see >1 distinct flow (all-same would mean a broken draw path).
        distinct_counts = [
            len({r.connection for r in sank if r.job_id == job.job_id})
            for job in gen.jobs
        ]
        assert max(distinct_counts) > 1

    def test_job_arrival_instants_match_flat_generator(self, sim):
        # One gap draw per job means job arrivals replay the flat
        # generator's request arrivals for the same seed and count.
        from repro.workload.generator import LoadGenerator

        gen, _, _ = self._generator(sim, seed=13, n_jobs=40)
        gen.start()
        sim.run(until=1e12)
        job_arrivals = [j.arrival for j in gen.jobs]

        from repro.sim.engine import Simulator

        sim2 = Simulator()
        flat_sink = []
        flat = LoadGenerator(
            sim2, RandomStreams(13), PoissonArrivals(1e6),
            Exponential(1000.0), sink=flat_sink.append, n_requests=40,
        )
        flat.start()
        sim2.run(until=1e12)
        assert job_arrivals == [r.arrival for r in flat_sink]

    def test_warmup_excludes_prefix_jobs(self, sim):
        gen, _, tracker = self._generator(sim, n_jobs=40, warmup_fraction=0.25)
        gen.start()
        sim.run(until=1e12)
        for job in gen.jobs:  # mark all complete
            job.finished = job.arrival + 1.0
        assert gen.warmup_jobs == 10
        assert len(gen.measured_jobs()) == 30
        assert all(j.job_id >= 10 for j in gen.measured_jobs())

    def test_generator_validation(self, sim):
        with pytest.raises(ValueError):
            self._generator(sim, n_jobs=0)
        with pytest.raises(ValueError):
            self._generator(sim, warmup_fraction=1.0)


# ----------------------------------------------------------------------
# Gang shadows + gang admission
# ----------------------------------------------------------------------
class TestGangShadow:
    def test_shadow_mirrors_primary(self):
        primary = make_request(req_id=9, arrival=50.0, service_time=750.0,
                               job_id=3, fanout=2, sibling_index=1,
                               core_demand=4)
        primary.enqueued = 60.0
        shadow = make_gang_shadow(primary, 2)
        assert shadow.gang_shadow
        assert shadow.req_id < 0
        assert shadow.service_time == 750.0
        assert shadow.arrival == 50.0
        assert shadow.enqueued == 60.0
        assert shadow.job_id == 3 and shadow.core_demand == 4

    def test_shadow_ids_never_collide(self):
        ids = set()
        for rid in range(100):
            primary = make_request(req_id=rid)
            for slot in range(1, 8):
                ids.add(make_gang_shadow(primary, slot).req_id)
        assert len(ids) == 100 * 7

    def test_shadow_index_validated(self):
        primary = make_request()
        with pytest.raises(ValueError):
            make_gang_shadow(primary, 0)
        with pytest.raises(ValueError):
            make_gang_shadow(primary, GANG_SHADOW_STRIDE)


class TestGangAdmission:
    def test_gang_occupies_demand_cores_worth_of_time(self, sim, streams):
        # Work conservation: each completed primary with demand c burns
        # exactly c * service_time of core busy-time (shadows included).
        system = ideal_cfcfs(sim, streams, n_cores=4)
        result = run_workload(
            system, sim, streams, PoissonArrivals(5e5), Fixed(1000.0),
            n_requests=200, warmup_fraction=0.0,
            jobs=JobShape(core_demand=ChoiceDegree((1, 2), (0.5, 0.5))),
        )
        assert result.jobs.completed == 200
        busy = sum(core.busy_ns for core in system.cores)
        expected = sum(r.service_time * r.core_demand for r in result.requests)
        assert busy == pytest.approx(expected)

    def test_shadows_fenced_out_of_stats_and_request_log(self, sim, streams):
        system = ideal_cfcfs(sim, streams, n_cores=4)
        result = run_workload(
            system, sim, streams, PoissonArrivals(5e5), Fixed(1000.0),
            n_requests=100, warmup_fraction=0.0,
            jobs=JobShape(core_demand=FixedDegree(2)),
        )
        # Stats count primaries only: one terminal per sub-request.
        assert system.stats.completed == 100
        assert all(r.req_id >= 0 for r in system.finished_requests)
        assert all(not r.gang_shadow for r in result.requests)

    def test_infeasible_gang_is_dropped_not_wedged(self, sim, streams):
        system = ideal_cfcfs(sim, streams, n_cores=2)
        result = run_workload(
            system, sim, streams, PoissonArrivals(5e5), Fixed(1000.0),
            n_requests=50, warmup_fraction=0.0,
            jobs=JobShape(core_demand=ChoiceDegree((1, 4), (0.5, 0.5))),
        )
        assert system.gang_infeasible_drops > 0
        assert result.jobs.completed + result.jobs.dropped == 50
        assert result.jobs.dropped == system.gang_infeasible_drops

    def test_altocumulus_gang_admission(self):
        result = quick_run(
            "altocumulus", n_cores=16, rate_rps=2e6, mean_service_ns=1000.0,
            n_requests=300, seed=5,
            jobs=JobShape(core_demand=ChoiceDegree((1, 2, 4), (0.6, 0.3, 0.1))),
        )
        assert result.jobs.count == 300
        assert result.jobs.completed + result.jobs.dropped == 300
        assert result.jobs.completed > 280  # moderate load: mostly done

    def test_gang_requires_capable_system(self):
        with pytest.raises(ValueError, match="gang"):
            quick_run("rss", n_cores=8, rate_rps=1e6, n_requests=50, seed=1,
                      jobs=JobShape(core_demand=FixedDegree(2)))

    def test_supports_gang_recurses_through_tiers(self):
        result = quick_run("rack", n_cores=16, rate_rps=1e6, n_requests=50,
                           seed=1)
        assert system_supports_gang(result.system)  # altocumulus leaves
        flat = quick_run("rss", n_cores=4, rate_rps=1e6, n_requests=50, seed=1)
        assert not system_supports_gang(flat.system)


# ----------------------------------------------------------------------
# Sibling steering
# ----------------------------------------------------------------------
class TestJobSteering:
    def test_policy_registry_includes_job_policies(self):
        assert "sticky" in POLICY_NAMES and "spread" in POLICY_NAMES
        assert isinstance(make_policy("sticky", n_servers=4, probe=None, sim=None,
                                      rng=None, cores_per_server=1),
                          StickyJobSteering)
        assert isinstance(make_policy("spread", n_servers=4, probe=None, sim=None,
                                      rng=None, cores_per_server=1),
                          SpreadJobSteering)

    def test_sticky_pins_all_siblings_to_one_server(self):
        policy = StickyJobSteering(8)
        picks = {
            policy.pick_server(make_request(req_id=i, job_id=42,
                                            sibling_index=i))
            for i in range(6)
        }
        assert len(picks) == 1

    def test_sticky_spreads_distinct_jobs(self):
        policy = StickyJobSteering(8)
        picks = {
            policy.pick_server(make_request(req_id=j, job_id=j))
            for j in range(64)
        }
        assert len(picks) > 1

    def test_spread_separates_siblings(self):
        policy = SpreadJobSteering(8)
        picks = [
            policy.pick_server(make_request(req_id=i, job_id=17, fanout=4,
                                            sibling_index=i))
            for i in range(4)
        ]
        assert len(set(picks)) == 4  # k <= n_servers: all distinct

    def test_job_policies_fall_back_to_connection_hash(self):
        sticky = StickyJobSteering(4)
        spread = SpreadJobSteering(4)
        req = make_request(req_id=1, connection=9)  # job_id None
        assert 0 <= sticky.pick_server(req) < 4
        assert 0 <= spread.pick_server(req) < 4
        # Flat traffic: repeatable per-connection pick.
        assert sticky.pick_server(req) == sticky.pick_server(req)
        assert spread.pick_server(req) == spread.pick_server(req)


# ----------------------------------------------------------------------
# Fan-out-corrected prediction
# ----------------------------------------------------------------------
class TestFanoutPrediction:
    def test_harmonic_numbers(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)
        assert harmonic_number(4) == pytest.approx(25.0 / 12.0)
        with pytest.raises(ValueError):
            harmonic_number(0)

    def test_fanout_one_is_the_base_model(self):
        base = ThresholdModel(a=2.0, b=1.0, c=1.5, d=0.5, name="cal")
        corrected = fanout_corrected_model(base, 1)
        for load in (4.0, 12.0):
            assert corrected.threshold(16, load) == pytest.approx(
                base.threshold(16, load))

    def test_fanout_shrinks_threshold_by_harmonic_number(self):
        base = ThresholdModel(a=2.0, b=1.0, name="cal")
        corrected = fanout_corrected_model(base, 4)
        assert corrected.name == "cal+fanout4"
        assert corrected.threshold(16, 12.0) == pytest.approx(
            base.threshold(16, 12.0) / harmonic_number(4))

    def test_overload_passes_infinity_through(self):
        corrected = fanout_corrected_model(ThresholdModel(), 8)
        assert math.isinf(corrected.threshold(4, 4.0))  # rho >= 1

    def test_expected_job_latency_inflates_with_fanout(self):
        base = expected_wait(16, 12.0, 1000.0) + 1000.0
        assert expected_job_latency(16, 12.0, 1000.0, 1) == pytest.approx(base)
        lat = [expected_job_latency(16, 12.0, 1000.0, k) for k in (1, 2, 4, 8)]
        assert lat == sorted(lat) and lat[0] < lat[-1]
        assert lat[3] == pytest.approx(harmonic_number(8) * base)

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            fanout_corrected_model(ThresholdModel(), 0)
        with pytest.raises(ValueError):
            expected_job_latency(16, 4.0, 1000.0, 0)

    def test_corrected_model_plugs_into_scheduler_seam(self, sim, streams):
        from repro.core.config import AltocumulusConfig
        from repro.core.scheduler import AltocumulusSystem

        config = AltocumulusConfig(
            n_groups=2, group_size=4,
            threshold_model=fanout_corrected_model(ThresholdModel(), 4),
        )
        system = AltocumulusSystem(sim, streams, config)
        result = run_workload(
            system, sim, streams, PoissonArrivals(2e6), Fixed(1000.0),
            n_requests=200, warmup_fraction=0.0,
            jobs=JobShape(fanout=FixedDegree(4)),
        )
        assert result.jobs.completed == result.jobs.count == 200


# ----------------------------------------------------------------------
# Trivial-shape compilation contract
# ----------------------------------------------------------------------
class TestTrivialCompilation:
    def test_trivial_shape_is_bit_identical_to_flat_path(self):
        def fingerprint(result):
            return [
                (r.req_id, r.arrival, r.enqueued, r.started, r.finished,
                 r.migrations, r.steals, r.core_id, r.group_id)
                for r in result.requests
            ]

        flat = quick_run("altocumulus", n_cores=8, rate_rps=2e6,
                         n_requests=300, seed=7)
        trivial = quick_run("altocumulus", n_cores=8, rate_rps=2e6,
                            n_requests=300, seed=7, jobs=JobShape())
        assert fingerprint(flat) == fingerprint(trivial)
        assert trivial.jobs is None  # compiled down: no job machinery ran

    def test_job_summary_lands_in_extra_namespace(self):
        result = quick_run("altocumulus", n_cores=8, rate_rps=2e6,
                           n_requests=200, seed=7,
                           jobs=JobShape(fanout=ChoiceDegree((1, 2))))
        assert result.extra["job.count"] == 200
        assert result.extra["job.subrequests"] == result.jobs.subrequests
        assert result.extra["job.completed"] == result.jobs.completed
        assert result.jobs.latency.p99 >= result.jobs.latency.p50
