"""Edge-case batteries for the MICA store's moving parts.

Three corners the unit suites skim past:

* **Probe depth under churn** -- bucket chains grow with collisions,
  shrink on delete, and *stay* grown when the log evicts out from under
  the index (the dangling entry still lengthens the probe until a GET
  trips over it and self-heals).
* **Log wraparound** -- multi-record eviction on one oversized append,
  exact live-byte accounting across many wrap cycles, tail-skip over
  the offset gaps eviction leaves behind.
* **Dedup window expiry** -- the bounded at-most-once window is strict
  FIFO on *first service*: duplicates do not refresh an id's position,
  expired ids are re-served as unique, and the expired counter audits
  every forgotten id.
"""

import pytest

from repro.kvs.dedup import DuplicateDetector
from repro.kvs.hashtable import HashIndex
from repro.kvs.log import RECORD_HEADER_BYTES, CircularLog
from repro.kvs.store import MicaPartition
from repro.telemetry import MetricRegistry


def record_size(key=b"k", value=b"v"):
    return RECORD_HEADER_BYTES + len(key) + len(value)


class TestProbeDepthGrowth:
    def test_chain_grows_one_per_colliding_insert(self):
        idx = HashIndex(1)  # everything collides
        for i in range(1, 33):
            idx.put(b"key%d" % i, i)
            assert idx.bucket_load(b"key1") == i

    def test_update_does_not_grow_the_chain(self):
        idx = HashIndex(1)
        for _ in range(10):
            idx.put(b"a", 1)
        assert idx.bucket_load(b"a") == 1
        assert len(idx) == 1

    def test_delete_shrinks_the_chain(self):
        idx = HashIndex(1)
        for i in range(8):
            idx.put(b"key%d" % i, i)
        for i in range(4):
            idx.delete(b"key%d" % i)
        assert idx.bucket_load(b"key7") == 4
        assert len(idx) == 4

    def test_probe_depth_feeds_service_time(self):
        # The factory charges probe_ns per chain slot, so a deep bucket
        # makes the *same* op slower -- the store state is observable in
        # the service model.
        from repro.kvs.handlers import MicaServiceModel
        from repro.workload.request import RequestKind

        model = MicaServiceModel.nanorpc()
        shallow = model.service_ns(RequestKind.GET, 1)
        deep = model.service_ns(RequestKind.GET, 20)
        assert deep == shallow + 19 * model.probe_ns

    def test_eviction_leaves_chain_long_until_get_heals_it(self):
        # Log eviction does not touch the index: the dangling entry
        # keeps the probe deep.  The next GET detects the dangle
        # (offset-window check), deletes it, and the chain shrinks.
        size = record_size(b"kkkk", b"vvvv")
        part = MicaPartition(0, n_buckets=1, log_bytes=size * 2)
        keys = [b"k%03d" % i for i in range(4)]
        for key in keys:
            part.set(key, b"vvvv")
        assert part.log.evictions == 2
        assert part.index.bucket_load(keys[0]) == 4  # dangles included
        assert part.get(keys[0]) is None
        assert part.index.bucket_load(keys[-1]) == 3  # healed
        assert part.stats.misses == 1

    def test_healed_entry_is_gone_not_respawned(self):
        size = record_size(b"kkkk", b"vvvv")
        part = MicaPartition(0, n_buckets=1, log_bytes=size * 2)
        keys = [b"k%03d" % i for i in range(3)]
        for key in keys:
            part.set(key, b"vvvv")
        assert part.get(keys[0]) is None
        assert part.get(keys[0]) is None  # still a miss, no re-insert
        assert part.stats.misses == 2
        assert len(part.index) == 2


class TestLogWraparound:
    def test_one_big_append_evicts_many_small_records(self):
        small = record_size(b"k", b"v")
        log = CircularLog(small * 8)
        for _ in range(8):
            log.append(b"k", b"v")
        assert log.evictions == 0
        big_value = b"x" * (small * 4 - RECORD_HEADER_BYTES - 1)
        log.append(b"b", big_value)
        assert log.evictions == 4
        assert log.live_bytes <= log.capacity_bytes

    def test_live_bytes_exact_across_many_wrap_cycles(self):
        size = record_size(b"kk", b"vv")
        log = CircularLog(size * 3 + 1)
        for i in range(100):
            log.append(b"kk", b"vv")
            assert log.live_bytes == size * min(i + 1, 3)
        assert log.appends == 100
        assert log.evictions == 97
        assert log.live_records == 3

    def test_tail_skips_offset_gaps(self):
        # Offsets advance by record size, so eviction leaves gaps the
        # tail pointer must walk over; mixing record sizes exercises
        # the skip loop.
        log = CircularLog(256)
        for i in range(50):
            log.append(b"k", b"v" * (1 + (i % 7) * 5))
        assert log.evictions > 0
        assert log.live_bytes <= 256
        assert log.live_bytes == sum(
            record.size for record in log._records.values()
        )

    def test_record_exactly_at_capacity_fits_alone(self):
        value = b"v" * 100
        log = CircularLog(record_size(b"k", value))
        first = log.append(b"k", value)
        assert log.utilization == 1.0
        second = log.append(b"k", value)
        assert log.read(first.offset) is None
        assert log.read(second.offset) is not None
        assert log.evictions == 1

    def test_evicted_offset_never_resurrects(self):
        size = record_size()
        log = CircularLog(size * 2)
        first = log.append(b"k", b"v")
        for _ in range(5):
            log.append(b"k", b"v")
        assert not log.is_live(first.offset)
        assert log.read(first.offset) is None


class TestDedupWindowExpiry:
    def test_duplicate_does_not_refresh_fifo_position(self):
        # Strict FIFO on first service: re-observing id 0 must not
        # save it from expiry when ids 1..3 push the window.
        detector = DuplicateDetector(window=3)
        for i in range(3):
            detector.observe(i)
        assert detector.observe(0)  # duplicate, position unchanged
        detector.observe(3)  # evicts 0, not 1
        assert not detector.seen(0)
        assert detector.seen(1)
        assert detector.expired == 1

    def test_expired_duplicate_is_served_again_as_unique(self):
        detector = DuplicateDetector(window=2)
        detector.observe(7)
        detector.observe(8)
        detector.observe(9)  # 7 expires
        assert not detector.observe(7)  # undetected: counted unique
        assert detector.unique == 4
        assert detector.duplicates == 0
        assert detector.expired == 2  # 7 once, then 8

    def test_window_of_one_remembers_only_the_last_id(self):
        detector = DuplicateDetector(window=1)
        assert not detector.observe(1)
        assert detector.observe(1)
        assert not detector.observe(2)
        assert not detector.seen(1)
        assert detector.tracked == 1

    def test_tracked_never_exceeds_window(self):
        detector = DuplicateDetector(window=5)
        for i in range(100):
            detector.observe(i)
            assert detector.tracked <= 5
        assert detector.expired == 95

    def test_unbounded_default_never_expires(self):
        detector = DuplicateDetector()
        for i in range(1_000):
            detector.observe(i)
        assert detector.tracked == 1_000
        assert detector.expired == 0
        assert detector.observe(0)  # ancient id still detected

    def test_expired_counter_surfaces_in_registry(self):
        registry = MetricRegistry()
        detector = DuplicateDetector(registry=registry, window=2)
        for i in range(4):
            detector.observe(i)
        snapshot = registry.snapshot("kvs.dedup")
        assert snapshot["kvs.dedup.expired"] == 2
        assert snapshot["kvs.dedup.unique"] == 4
        assert detector.expired == 2

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            DuplicateDetector(window=0)
        with pytest.raises(ValueError):
            DuplicateDetector(window=-3)
