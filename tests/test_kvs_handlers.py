"""Unit tests for the MICA workload binding and service model."""

import pytest

from repro.hw.constants import HwConstants
from repro.kvs.dataset import build_dataset, make_key
from repro.kvs.handlers import MicaServiceModel, MicaWorkload
from repro.workload.request import RequestKind
from tests.conftest import make_request


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(n_partitions=4, n_keys=400, seed=3)


def make_workload(dataset, **kwargs):
    defaults = dict(scan_fraction=0.01, seed=5)
    defaults.update(kwargs)
    return MicaWorkload(dataset, MicaServiceModel.nanorpc(), n_groups=4,
                        **defaults)


class TestServiceModel:
    def test_nanorpc_get_set_are_tens_of_ns(self):
        model = MicaServiceModel.nanorpc()
        assert 40 <= model.service_ns(RequestKind.GET, 1) <= 80
        assert 40 <= model.service_ns(RequestKind.SET, 1) <= 80

    def test_erpc_is_around_850ns(self):
        model = MicaServiceModel.erpc()
        assert 850 <= model.service_ns(RequestKind.SET, 0) <= 1_000

    def test_get_slower_than_set(self):
        for model in (MicaServiceModel.nanorpc(), MicaServiceModel.erpc()):
            assert model.service_ns(RequestKind.GET, 1) > model.service_ns(
                RequestKind.SET, 1
            )

    def test_scan_dominates(self):
        model = MicaServiceModel.nanorpc()
        assert model.service_ns(RequestKind.SCAN, 1) == model.scan_ns

    def test_probe_depth_adds_cost(self):
        model = MicaServiceModel.nanorpc()
        assert model.service_ns(RequestKind.GET, 10) == (
            model.service_ns(RequestKind.GET, 0) + 10 * model.probe_ns
        )

    def test_mean_service_closed_form(self):
        model = MicaServiceModel.nanorpc()
        mean = model.mean_service_ns(get_fraction=0.5, scan_fraction=0.005)
        assert mean == pytest.approx(
            0.995 * (0.5 * (40 + 15 + 2) + 0.5 * (40 + 10 + 2))
            + 0.005 * model.scan_ns
        )

    def test_mean_service_closed_form_with_deletes(self):
        model = MicaServiceModel.nanorpc()
        mean = model.mean_service_ns(
            get_fraction=0.5, scan_fraction=0.005, delete_fraction=0.2
        )
        assert mean == pytest.approx(
            0.795 * (0.5 * (40 + 15 + 2) + 0.5 * (40 + 10 + 2))
            + 0.005 * model.scan_ns
            + 0.2 * (40 + 5 + 2)
        )

    def test_mean_no_longer_ignores_deletes(self):
        # Regression: the closed form used to drop delete_fraction
        # entirely, over-predicting the mean (DELETEs are the cheapest
        # op).
        model = MicaServiceModel.nanorpc()
        with_deletes = model.mean_service_ns(0.5, 0.0, delete_fraction=0.3)
        without = model.mean_service_ns(0.5, 0.0)
        assert with_deletes < without

    def test_mean_no_longer_hardcodes_probe_depth(self):
        # Regression: the closed form used to assume probe depth 1; a
        # loaded store probes deeper and every non-SCAN op pays for it.
        model = MicaServiceModel.nanorpc()
        shallow = model.mean_service_ns(0.5, 0.0, probe_depth=1.0)
        deep = model.mean_service_ns(0.5, 0.0, probe_depth=3.0)
        assert deep == pytest.approx(shallow + 2.0 * model.probe_ns)

    def test_mean_validation(self):
        with pytest.raises(ValueError):
            MicaServiceModel.nanorpc().mean_service_ns(1.5, 0.0)
        with pytest.raises(ValueError):
            MicaServiceModel.nanorpc().mean_service_ns(0.5, 0.0, -0.1)
        with pytest.raises(ValueError):
            MicaServiceModel.nanorpc().mean_service_ns(
                0.5, 0.6, delete_fraction=0.6
            )
        with pytest.raises(ValueError):
            MicaServiceModel.nanorpc().mean_service_ns(
                0.5, 0.0, probe_depth=-1.0
            )


class TestAnalyticVsSimulatedMean:
    """The closed form must track what the factory actually charges:
    draw requests, measure the empirical mean handler time, and compare
    against ``mean_service_ns`` fed the store's *measured* mean probe
    depth.  Service time is linear in probe depth and the key draw is
    independent of the kind draw, so per-kind the match is exact."""

    N_DRAWS = 2_000

    def _empirical(self, dataset, **mix):
        workload = make_workload(dataset, mode="erew", **mix)
        services, probes = [], []
        store = dataset.store
        for i in range(self.N_DRAWS):
            r = make_request(req_id=i)
            workload.request_factory(r)
            services.append(r.service_time)
            owner = store.owner_of(r.key)
            probes.append(store.partitions[owner].index.bucket_load(r.key))
        return sum(services) / len(services), sum(probes) / len(probes)

    @pytest.mark.parametrize("mix", [
        dict(get_fraction=1.0, scan_fraction=0.0),                    # GET
        dict(get_fraction=0.0, scan_fraction=0.0),                    # SET
        dict(get_fraction=0.0, scan_fraction=0.0, delete_fraction=1.0),
        dict(get_fraction=0.0, scan_fraction=1.0),                    # SCAN
    ])
    def test_pure_mix_matches_exactly(self, dataset, mix):
        mean, probe = self._empirical(dataset, **mix)
        model = MicaServiceModel.nanorpc()
        assert mean == pytest.approx(model.mean_service_ns(
            mix.get("get_fraction", 0.5),
            mix.get("scan_fraction", 0.0),
            delete_fraction=mix.get("delete_fraction", 0.0),
            probe_depth=probe,
        ))

    def test_four_kind_mix_matches_statistically(self, dataset):
        mix = dict(get_fraction=0.5, scan_fraction=0.01,
                   delete_fraction=0.2)
        mean, probe = self._empirical(dataset, **mix)
        model = MicaServiceModel.nanorpc()
        analytic = model.mean_service_ns(
            0.5, 0.01, delete_fraction=0.2, probe_depth=probe
        )
        # The 50-us SCAN tail dominates the sampling noise of a finite
        # draw; the run is seed-deterministic, measured within ~5%.
        assert mean == pytest.approx(analytic, rel=0.15)


class TestWorkloadFactory:
    def test_factory_assigns_kind_key_service(self, dataset):
        workload = make_workload(dataset)
        r = make_request()
        workload.request_factory(r)
        assert r.kind in (RequestKind.GET, RequestKind.SET, RequestKind.SCAN)
        assert r.key in dataset.keys
        assert r.service_time > 0
        assert r.remaining == r.service_time

    def test_connection_maps_to_owner_group(self, dataset):
        workload = make_workload(dataset)
        pool = workload._pool
        for _ in range(100):
            r = make_request()
            workload.request_factory(r)
            owner = dataset.store.owner_of(r.key)
            assert pool.hash_to_queue(r.connection, 4) == owner

    def test_op_mix_fractions(self, dataset):
        workload = make_workload(dataset, scan_fraction=0.1, get_fraction=0.5)
        kinds = []
        for _ in range(3_000):
            r = make_request()
            workload.request_factory(r)
            kinds.append(r.kind)
        scans = sum(1 for k in kinds if k is RequestKind.SCAN)
        assert scans / len(kinds) == pytest.approx(0.1, abs=0.03)

    def test_partition_count_must_match_groups(self, dataset):
        with pytest.raises(ValueError):
            MicaWorkload(dataset, MicaServiceModel.nanorpc(), n_groups=8)


class TestExecution:
    def test_execute_runs_op_against_store(self, dataset):
        workload = make_workload(dataset, get_fraction=0.0, scan_fraction=0.0)
        r = make_request()
        workload.request_factory(r)  # a SET
        before = dataset.store.partition(dataset.store.owner_of(r.key)).stats.sets
        workload.execute(r)
        after = dataset.store.partition(dataset.store.owner_of(r.key)).stats.sets
        assert after == before + 1

    def test_unmigrated_request_pays_no_penalty(self, dataset):
        workload = make_workload(dataset)
        r = make_request()
        workload.request_factory(r)
        assert workload.execute(r) == 0.0

    def test_migrated_request_pays_remote_access(self, dataset):
        workload = make_workload(dataset)
        r = make_request()
        workload.request_factory(r)
        r.migrations = 1
        penalty = workload.execute(r)
        assert penalty == HwConstants().coherence_msg_ns
        assert workload.remote_accesses == 1

    def test_cross_socket_penalty_adds_qpi(self, dataset):
        workload = make_workload(dataset, groups_per_socket=1)
        r = make_request()
        workload.request_factory(r)
        r.migrations = 1
        owner = dataset.store.owner_of(r.key)
        r.group_id = (owner + 1) % 4  # executed on a different socket
        penalty = workload.execute(r)
        constants = HwConstants()
        assert penalty == constants.coherence_msg_ns + constants.qpi_ns

    def test_get_returns_value(self, dataset):
        workload = make_workload(dataset, get_fraction=1.0, scan_fraction=0.0)
        r = make_request()
        workload.request_factory(r)
        workload.execute(r)
        assert r.app_result is not None

    def test_keyless_request_is_noop(self, dataset):
        workload = make_workload(dataset)
        assert workload.execute(make_request()) == 0.0


class TestDataset:
    def test_deterministic_keys(self):
        assert make_key(7) == make_key(7)
        assert len(make_key(7)) == 16

    def test_store_preloaded(self, dataset):
        assert dataset.store.total_records() == 400
        assert dataset.store.get(dataset.keys[0]) is not None

    def test_zipf_sampling_skews(self, dataset):
        import numpy as np

        rng = np.random.default_rng(0)
        uniform = [dataset.sample_key(rng, 0.0) for _ in range(2_000)]
        skewed = [dataset.sample_key(rng, 0.9) for _ in range(2_000)]
        head = set(dataset.keys[:40])
        assert sum(k in head for k in skewed) > sum(k in head for k in uniform)


class TestCrewMode:
    def test_crew_adds_concurrency_control_cost(self, dataset):
        erew = make_workload(dataset, mode="erew", scan_fraction=0.0,
                             get_fraction=1.0)
        crew = make_workload(dataset, mode="crew", scan_fraction=0.0,
                             get_fraction=1.0)
        a, b = make_request(), make_request()
        erew.request_factory(a)
        crew.request_factory(b)
        assert b.service_time == pytest.approx(
            a.service_time + MicaWorkload.CREW_CONTROL_NS
        )

    def test_crew_reads_pay_no_migration_penalty(self, dataset):
        crew = make_workload(dataset, mode="crew", scan_fraction=0.0,
                             get_fraction=1.0)
        r = make_request()
        crew.request_factory(r)
        r.migrations = 1
        assert crew.execute(r) == 0.0

    def test_crew_writes_still_pay_ownership_transfer(self, dataset):
        crew = make_workload(dataset, mode="crew", scan_fraction=0.0,
                             get_fraction=0.0)  # all SETs
        r = make_request()
        crew.request_factory(r)
        r.migrations = 1
        assert crew.execute(r) > 0.0

    def test_invalid_mode_rejected(self, dataset):
        with pytest.raises(ValueError):
            make_workload(dataset, mode="mesi")


class TestDelete:
    def test_delete_fraction_produces_deletes(self, dataset):
        workload = make_workload(dataset, delete_fraction=0.5,
                                 scan_fraction=0.0)
        kinds = []
        for _ in range(400):
            r = make_request()
            workload.request_factory(r)
            kinds.append(r.kind)
        deletes = sum(1 for k in kinds if k is RequestKind.DELETE)
        assert deletes / len(kinds) == pytest.approx(0.5, abs=0.08)

    def test_delete_removes_key(self, dataset):
        workload = make_workload(dataset, delete_fraction=1.0,
                                 scan_fraction=0.0)
        r = make_request()
        workload.request_factory(r)
        workload.execute(r)
        assert r.app_result is True
        assert dataset.store.get(r.key) is None

    def test_delete_is_cheaper_than_set(self):
        model = MicaServiceModel.nanorpc()
        assert model.service_ns(RequestKind.DELETE, 1) < model.service_ns(
            RequestKind.SET, 1
        )

    def test_fraction_overflow_rejected(self, dataset):
        with pytest.raises(ValueError):
            make_workload(dataset, scan_fraction=0.6, delete_fraction=0.6)


class TestMemoryBandwidth:
    def test_memory_model_charges_value_transfers(self, dataset):
        from repro.hw.memory import MemoryBandwidthModel
        from repro.sim.engine import Simulator

        sim = Simulator()
        memory = MemoryBandwidthModel(sim)
        workload = make_workload(dataset, scan_fraction=0.0,
                                 get_fraction=1.0, memory=memory)
        r = make_request()
        workload.request_factory(r)
        penalty = workload.execute(r)
        assert penalty >= memory.idle_latency_ns
        assert memory.accesses == 1

    def test_contention_grows_penalty(self, dataset):
        from repro.hw.memory import MemoryBandwidthModel
        from repro.sim.engine import Simulator

        sim = Simulator()
        memory = MemoryBandwidthModel(sim, bandwidth_bytes_per_ns=1.0,
                                      window_ns=10_000.0)
        workload = make_workload(dataset, scan_fraction=0.0,
                                 get_fraction=1.0, memory=memory)
        penalties = []
        for i in range(12):
            r = make_request(req_id=i)
            workload.request_factory(r)
            penalties.append(workload.execute(r))
        assert penalties[-1] > penalties[0]
