"""Unit tests for the MICA hash index."""

import pytest

from repro.kvs.hashtable import HashIndex, key_hash


class TestKeyHash:
    def test_stable(self):
        assert key_hash(b"hello") == key_hash(b"hello")

    def test_spreads(self):
        hashes = {key_hash(b"key%d" % i) % 64 for i in range(256)}
        assert len(hashes) > 32


class TestIndex:
    def test_put_get(self):
        idx = HashIndex(16)
        idx.put(b"a", 100)
        assert idx.get(b"a") == 100

    def test_update_overwrites(self):
        idx = HashIndex(16)
        idx.put(b"a", 100)
        idx.put(b"a", 200)
        assert idx.get(b"a") == 200
        assert len(idx) == 1

    def test_miss_returns_none(self):
        assert HashIndex(16).get(b"nope") is None

    def test_delete(self):
        idx = HashIndex(16)
        idx.put(b"a", 1)
        assert idx.delete(b"a")
        assert idx.get(b"a") is None
        assert not idx.delete(b"a")
        assert len(idx) == 0

    def test_collisions_resolved_by_full_key(self):
        idx = HashIndex(1)  # everything collides
        for i in range(20):
            idx.put(b"key%d" % i, i)
        for i in range(20):
            assert idx.get(b"key%d" % i) == i
        assert idx.bucket_load(b"key0") == 20

    def test_scan_yields_requested_count(self):
        idx = HashIndex(8)
        for i in range(30):
            idx.put(b"key%d" % i, i)
        items = list(idx.scan(b"key0", 10))
        assert len(items) == 10
        assert all(isinstance(k, bytes) for k, _ in items)

    def test_scan_capped_by_population(self):
        idx = HashIndex(8)
        idx.put(b"a", 1)
        assert len(list(idx.scan(b"a", 100))) == 1

    def test_scan_count_validation(self):
        with pytest.raises(ValueError):
            list(HashIndex(4).scan(b"a", -1))

    def test_invalid_bucket_count(self):
        with pytest.raises(ValueError):
            HashIndex(0)
