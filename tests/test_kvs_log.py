"""Unit and property tests for the MICA circular log."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvs.log import RECORD_HEADER_BYTES, CircularLog


def record_size(key=b"k", value=b"v"):
    return RECORD_HEADER_BYTES + len(key) + len(value)


class TestAppendRead:
    def test_read_your_write(self):
        log = CircularLog(1024)
        rec = log.append(b"key", b"value")
        got = log.read(rec.offset)
        assert got.key == b"key"
        assert got.value == b"value"

    def test_offsets_monotone(self):
        log = CircularLog(4096)
        offsets = [log.append(b"k", b"v").offset for _ in range(5)]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == 5

    def test_read_unknown_offset_is_none(self):
        log = CircularLog(1024)
        assert log.read(999) is None


class TestEviction:
    def test_wrap_evicts_oldest_first(self):
        size = record_size(b"aaaa", b"bbbb")
        log = CircularLog(size * 3)
        recs = [log.append(b"aaaa", b"bbbb") for _ in range(4)]
        assert log.read(recs[0].offset) is None  # oldest evicted
        assert log.read(recs[3].offset) is not None
        assert log.evictions == 1

    def test_live_bytes_never_exceed_capacity(self):
        log = CircularLog(500)
        for i in range(100):
            log.append(b"key%03d" % i, b"x" * 20)
            assert log.live_bytes <= 500

    def test_is_live(self):
        log = CircularLog(record_size() * 2)
        first = log.append(b"k", b"v")
        assert log.is_live(first.offset)
        log.append(b"k", b"v")
        log.append(b"k", b"v")
        assert not log.is_live(first.offset)

    def test_utilization(self):
        log = CircularLog(1000)
        assert log.utilization == 0.0
        log.append(b"kk", b"vv")
        assert 0 < log.utilization <= 1.0


class TestValidation:
    def test_record_larger_than_log_rejected(self):
        log = CircularLog(64)
        with pytest.raises(ValueError):
            log.append(b"k", b"v" * 200)

    def test_tiny_capacity_rejected(self):
        with pytest.raises(ValueError):
            CircularLog(RECORD_HEADER_BYTES)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=40))
def test_recent_records_always_readable(values):
    """Property: the most recent append is always readable, and the set
    of live records matches exactly the non-evicted suffix."""
    log = CircularLog(256)
    appended = []
    for i, value in enumerate(values):
        rec = log.append(b"k%d" % i, value)
        appended.append(rec)
        assert log.read(rec.offset).value == value
    live = [r for r in appended if log.is_live(r.offset)]
    # Live records form a contiguous suffix of the append order.
    assert live == appended[len(appended) - len(live):]
    assert log.live_records == len(live)
