"""Unit tests for the ownership layer: dispatch disciplines,
multiversion epochs, and the KvsSpec surface."""

import pytest

from repro.kvs.ownership import (
    MIX_PRESETS,
    OWNERSHIP_MODES,
    KvsSpec,
    MultiversionAccessor,
    OwnershipTable,
)
from repro.telemetry import MetricRegistry


class TestKvsSpec:
    def test_defaults_are_valid_and_frozen(self):
        spec = KvsSpec()
        assert spec.mode == "erew"
        with pytest.raises(AttributeError):
            spec.mode = "crew"

    @pytest.mark.parametrize("mix", sorted(MIX_PRESETS))
    def test_presets_resolve(self, mix):
        params = KvsSpec(mix=mix).mix_params()
        assert set(params) == {"get_fraction", "scan_fraction",
                               "delete_fraction", "zipf_s",
                               "hot_key_fraction"}
        assert params["scan_fraction"] + params["delete_fraction"] <= 1

    def test_explicit_fields_override_preset(self):
        spec = KvsSpec(mix="hot_key", hot_key_fraction=0.25)
        assert spec.mix_params()["hot_key_fraction"] == 0.25
        # Unset fields keep the preset's values.
        assert (spec.mix_params()["zipf_s"]
                == MIX_PRESETS["hot_key"]["zipf_s"])

    @pytest.mark.parametrize("kwargs", [
        dict(mode="mesi"),
        dict(mix="nonexistent"),
        dict(mode="dcrew", d=0),
        dict(mode="erew", multiversion=True),
        dict(mode="crcw", multiversion=True),
        dict(service="dpdk"),
        dict(n_keys=0),
        dict(hot_keys=0),
        dict(max_wait_ns=-1.0),
        dict(get_fraction=1.5),
        dict(zipf_s=-0.1),
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            KvsSpec(**kwargs)

    def test_spec_is_hashable_and_comparable(self):
        # The runner content-hashes specs into cache keys; frozen
        # dataclass equality is what makes identical points cache-hit.
        assert KvsSpec(mode="crew") == KvsSpec(mode="crew")
        assert hash(KvsSpec(d=3)) == hash(KvsSpec(d=3))
        assert KvsSpec(mode="crew") != KvsSpec(mode="crcw")


class TestErewDiscipline:
    def test_uncontended_admit_is_free(self):
        table = OwnershipTable(2, "erew")
        assert table.admit(0, False, now=0.0, hold_ns=50.0).wait_ns == 0.0
        assert table.admit(1, True, now=0.0, hold_ns=50.0).wait_ns == 0.0

    def test_any_second_access_waits_for_the_hold(self):
        table = OwnershipTable(1, "erew")
        table.admit(0, False, now=0.0, hold_ns=100.0)
        # Reads exclude reads under EREW -- that is the whole point.
        assert table.admit(0, False, now=30.0, hold_ns=50.0).wait_ns == 70.0

    def test_waits_chain_transitively(self):
        table = OwnershipTable(1, "erew")
        table.admit(0, True, now=0.0, hold_ns=100.0)
        table.admit(0, True, now=10.0, hold_ns=100.0)  # starts at 100
        adm = table.admit(0, True, now=20.0, hold_ns=10.0)  # behind both
        assert adm.wait_ns == 180.0

    def test_hold_expires(self):
        table = OwnershipTable(1, "erew")
        table.admit(0, True, now=0.0, hold_ns=100.0)
        assert table.admit(0, True, now=150.0, hold_ns=10.0).wait_ns == 0.0


class TestCrewDiscipline:
    def test_reads_are_concurrent(self):
        table = OwnershipTable(1, "crew")
        for i in range(5):
            assert table.admit(
                0, False, now=float(i), hold_ns=100.0
            ).wait_ns == 0.0
        assert table.total_waits == 0

    def test_read_waits_for_active_writer(self):
        table = OwnershipTable(1, "crew")
        table.admit(0, True, now=0.0, hold_ns=100.0)
        assert table.admit(0, False, now=40.0, hold_ns=10.0).wait_ns == 60.0

    def test_writer_drains_admitted_readers(self):
        table = OwnershipTable(1, "crew")
        table.admit(0, False, now=0.0, hold_ns=80.0)
        table.admit(0, False, now=0.0, hold_ns=120.0)
        assert table.admit(0, True, now=50.0, hold_ns=10.0).wait_ns == 70.0

    def test_writers_serialize(self):
        table = OwnershipTable(1, "crew")
        table.admit(0, True, now=0.0, hold_ns=100.0)
        assert table.admit(0, True, now=10.0, hold_ns=10.0).wait_ns == 90.0
        assert table.max_concurrent_writers(0) == 1


class TestDcrewDiscipline:
    def test_reads_below_bound_are_free(self):
        table = OwnershipTable(1, "dcrew", d=3)
        for _ in range(3):
            assert table.admit(0, False, now=0.0, hold_ns=100.0).wait_ns == 0.0

    def test_read_past_bound_waits_for_a_slot(self):
        table = OwnershipTable(1, "dcrew", d=2)
        table.admit(0, False, now=0.0, hold_ns=60.0)
        table.admit(0, False, now=0.0, hold_ns=100.0)
        # Third reader waits for the *oldest* holder (end 60) to drain.
        assert table.admit(0, False, now=10.0, hold_ns=10.0).wait_ns == 50.0

    def test_d1_reads_serialize_like_erew(self):
        table = OwnershipTable(1, "dcrew", d=1)
        table.admit(0, False, now=0.0, hold_ns=100.0)
        assert table.admit(0, False, now=0.0, hold_ns=10.0).wait_ns == 100.0

    def test_abort_past_wait_bound(self):
        table = OwnershipTable(1, "dcrew", d=1, max_wait_ns=20.0)
        table.admit(0, False, now=0.0, hold_ns=100.0)
        adm = table.admit(0, False, now=0.0, hold_ns=10.0)
        assert adm.aborted
        assert adm.wait_ns == 0.0
        assert table.aborts == 1
        # The aborted op recorded no hold: a later read still only sees
        # the first reader.
        assert table.admit(0, False, now=100.5, hold_ns=1.0).wait_ns == 0.0


class TestCrcwDiscipline:
    def test_nothing_ever_waits(self):
        table = OwnershipTable(1, "crcw")
        for i in range(10):
            adm = table.admit(0, i % 2 == 0, now=0.0, hold_ns=1000.0)
            assert adm.wait_ns == 0.0
        assert table.total_waits == 0
        assert table.max_concurrent_writers(0) == 5  # true overlap


class TestMultiversionReads:
    def test_reads_never_wait_under_a_writer(self):
        table = OwnershipTable(1, "crew", multiversion=True)
        table.admit(0, True, now=0.0, hold_ns=100.0)
        adm = table.admit(0, False, now=40.0, hold_ns=10.0)
        assert adm.wait_ns == 0.0
        assert adm.stale_read

    def test_reads_outside_writer_hold_are_fresh(self):
        table = OwnershipTable(1, "crew", multiversion=True)
        table.admit(0, True, now=0.0, hold_ns=50.0)
        adm = table.admit(0, False, now=60.0, hold_ns=10.0)
        assert not adm.stale_read

    def test_writer_does_not_drain_mv_readers(self):
        table = OwnershipTable(1, "crew", multiversion=True)
        table.admit(0, False, now=0.0, hold_ns=500.0)
        # A multiversion writer installs a fresh version instead of
        # waiting for readers of the old one.
        assert table.admit(0, True, now=10.0, hold_ns=10.0).wait_ns == 0.0

    def test_requires_crew_or_dcrew(self):
        with pytest.raises(ValueError):
            OwnershipTable(1, "erew", multiversion=True)
        with pytest.raises(ValueError):
            OwnershipTable(1, "crcw", multiversion=True)


class TestMultiversionAccessor:
    def test_commit_advances_epoch_and_defers(self):
        mv = MultiversionAccessor()
        mv.read(now=0.0, end_ns=100.0, writer_active=False)
        mv.writer_commit(now=10.0)
        assert mv.epoch == 1
        assert mv.deferred == 1  # epoch-0 reader live until t=100

    def test_reclaim_waits_for_older_epoch_readers(self):
        mv = MultiversionAccessor()
        mv.read(now=0.0, end_ns=100.0, writer_active=False)
        mv.writer_commit(now=10.0)
        assert mv.sweep(now=50.0) == 0  # reader still active
        assert mv.sweep(now=100.5) == 1
        assert mv.deferred == 0
        assert mv.reclaimed == 1

    def test_unread_version_reclaims_immediately(self):
        mv = MultiversionAccessor()
        mv.writer_commit(now=10.0)
        assert mv.deferred == 0
        assert mv.reclaimed == 1

    def test_new_epoch_readers_do_not_block_older_commits(self):
        mv = MultiversionAccessor()
        mv.writer_commit(now=0.0)  # reclaims instantly (no readers)
        mv.read(now=1.0, end_ns=1_000.0, writer_active=False)  # epoch 1
        mv.writer_commit(now=2.0)  # superseded v1: epoch-1 reader live
        assert mv.deferred == 1
        mv.read(now=3.0, end_ns=2_000.0, writer_active=False)  # epoch 2
        # The epoch-2 reader reads the *new* version; it must not pin
        # the epoch-1 deferral past its own lifetime.
        assert mv.sweep(now=1_500.0) == 1
        assert mv.reclaimed == 2

    def test_chained_commits_reclaim_in_order(self):
        mv = MultiversionAccessor()
        for t in (0.0, 10.0, 20.0):
            mv.read(now=t, end_ns=t + 50.0, writer_active=False)
            mv.writer_commit(now=t + 1.0)
        assert mv.epoch == 3
        assert mv.sweep(now=1_000.0) == 3
        assert mv.deferred == 0
        assert mv.reclaimed == 3

    def test_epoch_bookkeeping_is_pruned(self):
        mv = MultiversionAccessor()
        for t in range(20):
            mv.read(now=float(t), end_ns=t + 1.0, writer_active=False)
            mv.writer_commit(now=t + 0.5)
        mv.sweep(now=1_000.0)
        assert not mv._epoch_end  # dead epochs dropped, no leak

    def test_instruments_surface_in_registry(self):
        registry = MetricRegistry()
        table = OwnershipTable(1, "crew", multiversion=True,
                               registry=registry)
        table.admit(0, True, now=0.0, hold_ns=100.0)
        table.admit(0, False, now=10.0, hold_ns=10.0)
        snap = registry.snapshot("kvs.ownership")
        assert snap["kvs.ownership.epoch"] == 1
        assert snap["kvs.ownership.mv_reads"] == 1
        assert snap["kvs.ownership.stale_reads"] == 1
        assert snap["kvs.ownership.admissions"] == 2


class TestTableValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            OwnershipTable(1, "mesi")

    def test_bad_partition_count_rejected(self):
        with pytest.raises(ValueError):
            OwnershipTable(0, "erew")

    def test_bad_bound_rejected(self):
        with pytest.raises(ValueError):
            OwnershipTable(1, "dcrew", d=0)

    def test_modes_constant_is_exhaustive(self):
        assert OWNERSHIP_MODES == ("erew", "crew", "crcw", "dcrew")
