"""Unit tests for the EREW MICA store."""

import pytest

from repro.kvs.store import MicaPartition, MicaStore


class TestPartition:
    def test_get_set_roundtrip(self):
        part = MicaPartition(0)
        part.set(b"key", b"value")
        assert part.get(b"key") == b"value"
        assert part.stats.hits == 1

    def test_miss_counted(self):
        part = MicaPartition(0)
        assert part.get(b"missing") is None
        assert part.stats.misses == 1
        assert part.stats.hit_rate == 0.0

    def test_update_returns_latest(self):
        part = MicaPartition(0)
        part.set(b"k", b"v1")
        part.set(b"k", b"v2")
        assert part.get(b"k") == b"v2"

    def test_eviction_becomes_miss(self):
        """When the log wraps past a record, its index entry dangles and
        the lookup reports a miss (MICA's lossy semantics)."""
        part = MicaPartition(0, log_bytes=200)
        part.set(b"old", b"x" * 50)
        for i in range(5):
            part.set(b"new%d" % i, b"y" * 50)
        assert part.get(b"old") is None

    def test_scan_returns_live_pairs(self):
        part = MicaPartition(0)
        for i in range(10):
            part.set(b"key%d" % i, b"v%d" % i)
        results = part.scan(b"key0", 5)
        assert len(results) == 5
        assert part.stats.scans == 1


class TestStore:
    def test_owner_is_stable_and_in_range(self):
        store = MicaStore(4)
        for i in range(50):
            key = b"key%d" % i
            owner = store.owner_of(key)
            assert 0 <= owner < 4
            assert store.owner_of(key) == owner

    def test_erew_routing(self):
        """set/get route to the owner partition only."""
        store = MicaStore(4)
        store.set(b"hello", b"world")
        owner = store.owner_of(b"hello")
        assert store.partition(owner).stats.sets == 1
        for p in range(4):
            if p != owner:
                assert store.partition(p).stats.sets == 0
        assert store.get(b"hello") == b"world"

    def test_keys_spread_across_partitions(self):
        store = MicaStore(4)
        owners = {store.owner_of(b"key%d" % i) for i in range(100)}
        assert owners == {0, 1, 2, 3}

    def test_total_records(self):
        store = MicaStore(2)
        for i in range(10):
            store.set(b"k%d" % i, b"v")
        assert store.total_records() == len(store) == 10

    def test_scan_via_owner(self):
        store = MicaStore(2)
        for i in range(20):
            store.set(b"k%d" % i, b"v")
        results = store.scan(b"k0", 5)
        assert 0 < len(results) <= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MicaStore(0)
