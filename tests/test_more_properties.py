"""Additional property-based tests: configuration validation, MMPP
feasibility, stack monotonicity, and Erlang-C/threshold coherence."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.config import AltocumulusConfig
from repro.core.prediction import ThresholdModel, erlang_c, upper_bound_threshold
from repro.stack.profiles import erpc_stack, nanorpc_stack, tcpip_stack
from repro.workload.arrivals import MMPPArrivals


@settings(max_examples=100, deadline=None)
@given(
    n_groups=st.integers(1, 32),
    group_size=st.integers(2, 64),
    period=st.floats(1.0, 10_000.0),
    bulk=st.integers(1, 64),
    concurrency=st.integers(1, 31),
    variant=st.sampled_from(["int", "rss"]),
    interface=st.sampled_from(["isa", "msr"]),
)
def test_valid_configs_always_construct(n_groups, group_size, period, bulk,
                                        concurrency, variant, interface):
    """Any in-range parameter combination builds a consistent config."""
    config = AltocumulusConfig(
        n_groups=n_groups, group_size=group_size, period_ns=period,
        bulk=bulk, concurrency=concurrency, variant=variant,
        interface=interface,
    )
    assert config.n_cores == n_groups * group_size
    assert config.n_workers == n_groups * (group_size - 1)
    assert config.effective_dispatch in ("hw", "sw")
    assert config.domain_of(0) == list(range(n_groups))


@settings(max_examples=60, deadline=None)
@given(
    rate_mrps=st.floats(0.1, 1_000.0),
    burst=st.floats(1.01, 6.0),
    calm=st.floats(0.05, 0.95),
    dwell=st.floats(100.0, 1e6),
    batch=st.floats(1.0, 16.0),
)
def test_mmpp_feasibility_boundary(rate_mrps, burst, calm, dwell, batch):
    """MMPP construction succeeds iff the calm state can absorb the
    burst state's excess; whichever way, behaviour is well defined."""
    feasible = (1.0 - (1.0 - calm) * burst) / calm > 0
    if not feasible:
        with pytest.raises(ValueError):
            MMPPArrivals(rate_mrps * 1e6, burst_factor=burst,
                         calm_fraction=calm, mean_dwell_ns=dwell,
                         batch_mean=batch)
        return
    process = MMPPArrivals(rate_mrps * 1e6, burst_factor=burst,
                           calm_fraction=calm, mean_dwell_ns=dwell,
                           batch_mean=batch)
    rng = np.random.default_rng(0)
    gaps = [process.next_gap(rng) for _ in range(200)]
    assert all(g >= 0 for g in gaps)


@settings(max_examples=60, deadline=None)
@given(
    req=st.integers(0, 1 << 16),
    resp=st.integers(0, 1 << 16),
    extra=st.integers(1, 1 << 12),
)
def test_stack_costs_monotone_in_message_size(req, resp, extra):
    """Bigger messages never get cheaper, for every profile."""
    for profile in (tcpip_stack(), erpc_stack(), nanorpc_stack()):
        base = profile.processing_ns(req, resp)
        assert profile.processing_ns(req + extra, resp) >= base
        assert profile.processing_ns(req, resp + extra) >= base


@settings(max_examples=80, deadline=None)
@given(
    k=st.integers(1, 64),
    frac=st.floats(0.05, 0.99),
    a=st.floats(0.1, 3.0),
    b=st.floats(0.0, 100.0),
    c=st.floats(0.1, 3.0),
    d=st.floats(0.0, 10.0),
    slo_mult=st.floats(1.0, 50.0),
)
def test_threshold_model_coherence(k, frac, a, b, c, d, slo_mult):
    """For stable loads: thresholds are finite, positive-affine models
    grow with load, and the upper bound dominates k."""
    load = frac * k
    model = ThresholdModel(a=a, b=b, c=c, d=d)
    t = model.threshold(k, load)
    assert math.isfinite(t)
    assert t >= 0 or b < 0  # non-negative given non-negative constants
    heavier = model.threshold(k, min(0.999 * k, load * 1.01))
    assume(load * 1.01 < k)
    assert heavier >= t - 1e-9  # monotone in load for positive a, c
    assert upper_bound_threshold(k, slo_mult) > k * (slo_mult - 1)


@settings(max_examples=80, deadline=None)
@given(k=st.integers(1, 100), frac=st.floats(0.01, 0.99))
def test_erlang_c_monotone_in_k_at_fixed_rho(k, frac):
    """More servers at equal utilization => lower queueing probability."""
    if k < 2:
        return
    small = erlang_c(k - 1, frac * (k - 1))
    large = erlang_c(k, frac * k)
    assert large <= small + 1e-9
