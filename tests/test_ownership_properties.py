"""Hypothesis battery: the ownership invariants hold across the whole
(mode x op-mix x fault-plan) space.

For any sampled discipline, MICA op mix and fault plan, one full
simulated run must leave the :class:`OwnershipTable`'s audit state
consistent with its discipline's contract:

* **EREW** -- at most one manager group ever performs a given
  partition's data access (the exclusive-owner invariant the paper's
  concurrency-free claim rests on), and writer holds never overlap.
* **d-CREW** -- overlapping writer holds never exceed the bound ``d``
  (writers are exclusive, so the high-water mark is at most 1).
* **CRCW** -- nothing ever waits: zero admission waits, zero wait-ns.
* **Every mode** -- admission accounting conserves: each executed op
  was admitted exactly once, each abort was counted, and the telemetry
  counters agree with the table's own audit view.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import run_workload
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.kvs.ownership import KvsSpec
from repro.kvs.wiring import wire_kvs
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload import PoissonArrivals
from repro.workload.service import Fixed

N_GROUPS = 4
N_CORES = 8
RATE_RPS = 6e6
N_REQUESTS = 250
SEED = 7

RETRY = RetryPolicy(timeout_ns=15_000.0, max_retries=2,
                    backoff_base_ns=5_000.0, backoff_cap_ns=20_000.0,
                    jitter=0.5)


@st.composite
def ownership_specs(draw):
    """A KvsSpec sampling every discipline and a broad op-mix range."""
    mode = draw(st.sampled_from(["erew", "crew", "dcrew", "crcw"]))
    kwargs = dict(
        mode=mode,
        get_fraction=draw(st.floats(0.0, 1.0)),
        scan_fraction=draw(st.floats(0.0, 0.02)),
        delete_fraction=draw(st.floats(0.0, 0.3)),
        zipf_s=draw(st.floats(0.0, 1.2)),
        hot_key_fraction=draw(st.floats(0.0, 0.8)),
    )
    if mode == "dcrew":
        kwargs["d"] = draw(st.integers(1, 4))
    if mode in ("crew", "dcrew"):
        kwargs["multiversion"] = draw(st.booleans())
    return KvsSpec(**kwargs)


@st.composite
def fault_plans(draw):
    """None, or a small single-server plan (drops, stalls, a manager
    failover) so retries and redispatch interleave with admission."""
    if not draw(st.booleans()):
        return None
    events = []
    if draw(st.booleans()):
        events.append(FaultEvent(
            time_ns=draw(st.floats(5_000.0, 30_000.0)), kind="nic_drop",
            target=0, magnitude=draw(st.floats(0.1, 0.5)),
            duration_ns=20_000.0,
        ))
    if draw(st.booleans()):
        events.append(FaultEvent(
            time_ns=draw(st.floats(5_000.0, 30_000.0)), kind="core_stall",
            target=0, subtarget=draw(st.integers(0, N_CORES - 1)),
            magnitude=10.0, duration_ns=20_000.0,
        ))
    if draw(st.booleans()):
        events.append(FaultEvent(
            time_ns=draw(st.floats(10_000.0, 40_000.0)),
            kind="manager_fail", target=0,
            subtarget=draw(st.integers(0, N_GROUPS - 1)),
        ))
    if not events:
        return None
    return FaultPlan(events=tuple(events), retry=RETRY)


def run_ownership(spec, faults):
    """One wired run; returns (workload, table, result)."""
    sim = Simulator()
    streams = RandomStreams(SEED)
    system = AltocumulusSystem(sim, streams, AltocumulusConfig(
        n_groups=N_GROUPS, group_size=N_CORES // N_GROUPS,
    ))
    workload = wire_kvs(system, sim, spec, seed=streams.master_seed)
    result = run_workload(
        system, sim, streams, PoissonArrivals(RATE_RPS), Fixed(100.0),
        n_requests=N_REQUESTS, warmup_fraction=0.0,
        request_factory=workload.request_factory, faults=faults,
    )
    return workload, workload.ownership, result


def assert_invariants(spec, workload, table, metrics):
    # Admission accounting conserves across every discipline: each
    # executed op was admitted exactly once, each abort counted.
    assert table.admissions == workload.executed
    assert table.aborts == workload.aborted
    assert metrics["kvs.ownership.admissions"] == table.admissions
    assert metrics["kvs.ownership.wait_ns"] == table.total_wait_ns
    if spec.max_wait_ns is None:
        assert table.aborts == 0
    for p in range(table.n_partitions):
        if spec.mode == "erew":
            # Exclusive owner: one group (the owner's) ever touches the
            # partition, and writer holds never overlap.
            assert len(table.groups_touching(p)) <= 1
            assert table.max_concurrent_writers(p) <= 1
        elif spec.mode == "dcrew":
            assert table.max_concurrent_writers(p) <= max(1, spec.d)
            assert table.max_concurrent_writers(p) <= 1  # exclusive writers
        elif spec.mode == "crew":
            assert table.max_concurrent_writers(p) <= 1
    if spec.mode == "crcw":
        assert table.total_waits == 0
        assert table.total_wait_ns == 0.0
    if spec.mode == "erew":
        # The owner group performs every access, so the touch set is
        # exactly the owner's id wherever the partition saw traffic.
        touched = [p for p in range(table.n_partitions)
                   if table.groups_touching(p)]
        for p in touched:
            assert table.groups_touching(p) == {p}


_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(spec=ownership_specs(), faults=fault_plans())
@_SETTINGS
def test_invariants_hold_across_mode_mix_and_faults(spec, faults):
    workload, table, result = run_ownership(spec, faults)
    assert workload.executed > 0
    assert_invariants(spec, workload, table, result.metrics)


@given(spec=ownership_specs())
@_SETTINGS
def test_wired_runs_are_reproducible(spec):
    """Same spec + same seed -> bit-identical ownership telemetry."""
    runs = [run_ownership(spec, None)[2].metrics for _ in range(2)]
    keys = [k for k in runs[0] if k.startswith("kvs.")]
    assert keys
    for key in keys:
        assert runs[0][key] == runs[1][key], key


def test_dcrew_abort_path_counts_and_conserves():
    """A tight wait bound under a saturating hot-key mix actually
    aborts, and the aborted ops are excluded from the admission count.
    Pressure comes from its own rate: at the battery's gentle 6 MRPS
    the d=1 hot partition never queues long enough to trip a bound."""
    spec = KvsSpec(mode="dcrew", d=1, mix="hot_key", hot_key_fraction=0.9,
                   max_wait_ns=5.0)
    sim = Simulator()
    streams = RandomStreams(SEED)
    system = AltocumulusSystem(sim, streams, AltocumulusConfig(
        n_groups=N_GROUPS, group_size=N_CORES // N_GROUPS,
    ))
    workload = wire_kvs(system, sim, spec, seed=streams.master_seed)
    result = run_workload(
        system, sim, streams, PoissonArrivals(20e6), Fixed(100.0),
        n_requests=600, warmup_fraction=0.0,
        request_factory=workload.request_factory,
    )
    table = workload.ownership
    assert table.aborts > 0
    assert workload.aborted == table.aborts
    assert table.admissions == workload.executed
    assert result.metrics["kvs.ownership.aborts"] == table.aborts
