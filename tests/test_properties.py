"""Property-based tests over whole simulations (hypothesis).

These check structural invariants that must hold for *any* workload and
configuration: event causality, request conservation, latency sanity,
and seed determinism.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import build_system, run_workload
from repro.core.config import AltocumulusConfig
from repro.core.scheduler import AltocumulusSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal

SYSTEMS = ["rss", "zygos", "shinjuku", "nebula", "nanopu", "altocumulus"]


@settings(max_examples=15, deadline=None)
@given(
    name=st.sampled_from(SYSTEMS),
    n_cores=st.sampled_from([4, 8, 16]),
    rho=st.floats(0.1, 0.95),
    long_fraction=st.floats(0.0, 0.1),
    seed=st.integers(0, 10_000),
)
def test_simulation_invariants(name, n_cores, rho, long_fraction, seed):
    """For any system/load/seed: conservation, causality, non-negative
    latency, and exact service accounting."""
    service = Bimodal(500.0, 20_000.0, long_fraction)
    rate = rho * n_cores / service.mean * 1e9
    sim, streams = Simulator(), RandomStreams(seed)
    system = build_system(name, sim, streams, n_cores)
    n = 300
    result = run_workload(
        system, sim, streams, PoissonArrivals(rate), service,
        n_requests=n, warmup_fraction=0.0,
    )
    ids = [r.req_id for r in result.requests]
    assert len(ids) == n and len(set(ids)) == n
    for r in result.requests:
        assert r.finished is not None
        assert r.started is not None
        assert r.arrival <= r.started <= r.finished
        assert r.remaining == 0.0
        # Latency covers at least the intrinsic service time.
        assert r.latency >= r.service_time - 1e-6


@settings(max_examples=10, deadline=None)
@given(
    n_groups=st.sampled_from([2, 4]),
    group_size=st.sampled_from([4, 8]),
    bulk=st.integers(2, 32),
    concurrency=st.integers(1, 3),
    period=st.sampled_from([50.0, 200.0, 1000.0]),
    seed=st.integers(0, 1_000),
)
def test_altocumulus_invariants(n_groups, group_size, bulk, concurrency,
                                period, seed):
    """Any Altocumulus configuration conserves requests and respects the
    at-most-once migration rule, even under a single hot connection."""
    sim, streams = Simulator(), RandomStreams(seed)
    config = AltocumulusConfig(
        n_groups=n_groups, group_size=group_size, bulk=bulk,
        concurrency=min(concurrency, n_groups - 1) or 1,
        period_ns=period, offered_load=0.9,
    )
    system = AltocumulusSystem(sim, streams, config)
    workers = config.n_workers
    rate = 0.9 * workers / 1_000.0 * 1e9
    result = run_workload(
        system, sim, streams, PoissonArrivals(rate),
        Bimodal(500.0, 5_000.0, 0.1),
        n_requests=300, warmup_fraction=0.0,
        connections=ConnectionPool(1),
    )
    assert len(result.requests) == 300
    for r in result.requests:
        assert r.migrations <= 1
        if r.migrations:
            assert r.no_migration_eta is not None
    # Hardware protocol balanced: every sent descriptor was acked,
    # nacked, or is no longer in flight (run drained).
    for hw in system.managers:
        assert hw.in_flight_descriptors == 0
        assert hw.stats.migrates_acked + hw.stats.migrates_nacked == (
            hw.stats.migrates_sent
        )


@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(SYSTEMS),
    seed=st.integers(0, 1_000),
)
def test_seed_determinism(name, seed):
    """Identical (system, seed) -> bit-identical latency trajectories."""

    def run():
        sim, streams = Simulator(), RandomStreams(seed)
        system = build_system(name, sim, streams, 8)
        result = run_workload(
            system, sim, streams, PoissonArrivals(2e6),
            Bimodal(500.0, 10_000.0, 0.05),
            n_requests=200, warmup_fraction=0.0,
        )
        return [r.latency for r in result.requests]

    assert run() == run()
