"""The public API surface: everything exported in ``__all__`` resolves,
and the package-level convenience imports work."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.hw",
    "repro.workload",
    "repro.schedulers",
    "repro.core",
    "repro.kvs",
    "repro.stack",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must declare __all__"
    for name in module.__all__:
        assert getattr(module, name, None) is not None, (
            f"{package}.{name} listed in __all__ but missing"
        )


def test_top_level_convenience_imports():
    import repro

    assert callable(repro.quick_run)
    assert callable(repro.build_system)
    assert callable(repro.run_workload)
    assert repro.__version__


def test_version_matches_pyproject():
    import repro

    with open("pyproject.toml") as handle:
        content = handle.read()
    assert f'version = "{repro.__version__}"' in content
