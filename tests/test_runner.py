"""Tests for :mod:`repro.runner`: callable references, content
fingerprints, the on-disk result cache, and the parallel-vs-serial
determinism contract."""

import functools
import io
import pickle

import numpy as np
import pytest

from repro.runner import (
    CallableRef,
    PointSpec,
    ProgressPrinter,
    ResultCache,
    RunnerConfig,
    SpecError,
    SweepProgress,
    SweepRunner,
    SweepSpec,
    TaskSpec,
    execute_point,
    fingerprint,
    get_config,
    maybe_ref,
    overrides,
    ref,
    run_points,
)
from repro.schedulers.jbsq import ideal_cfcfs
from repro.workload.connections import ConnectionPool
from repro.workload.service import Bimodal, Fixed


def _builder(sim, streams, n_cores=4):
    return ideal_cfcfs(sim, streams, n_cores)


def _answer(x=21):
    return x * 2


def _point(rate=2e6, seed=1, n_requests=600, tag="t", **kwargs):
    return PointSpec(
        builder=ref(_builder, n_cores=4),
        service=Fixed(500.0),
        rate_rps=rate,
        n_requests=n_requests,
        seed=seed,
        slo_ns=10_000.0,
        tag=tag,
        **kwargs,
    )


class TestRef:
    def test_module_function_round_trips(self):
        r = ref(_builder, n_cores=8)
        assert r.target.endswith(":_builder")
        assert r.kwargs == {"n_cores": 8}
        assert callable(r.resolve())

    def test_ref_is_picklable(self):
        r = ref(_builder, n_cores=8)
        assert pickle.loads(pickle.dumps(r)) == r

    def test_lambda_rejected(self):
        with pytest.raises(SpecError, match="lambda or closure"):
            ref(lambda sim, streams: None)

    def test_closure_rejected(self):
        def local(sim, streams):
            return None

        with pytest.raises(SpecError, match="lambda or closure"):
            ref(local)

    def test_partial_kwargs_are_merged(self):
        r = ref(functools.partial(_builder, n_cores=2), n_cores=16)
        assert r.kwargs == {"n_cores": 16}

    def test_partial_with_positional_args_rejected(self):
        with pytest.raises(SpecError, match="positional"):
            ref(functools.partial(_builder, 1))

    def test_static_method_refs(self):
        r = ref(ConnectionPool.skewed, n_connections=8, zipf_s=0.5)
        pool = r.resolve()()
        assert pool.n_connections == 8

    def test_existing_ref_merges_kwargs(self):
        base = ref(_builder, n_cores=2)
        merged = ref(base, n_cores=32)
        assert merged.kwargs == {"n_cores": 32}

    def test_maybe_ref_passes_none_through(self):
        assert maybe_ref(None) is None
        assert maybe_ref(_builder) == ref(_builder)

    def test_malformed_target_raises(self):
        with pytest.raises(SpecError):
            CallableRef("no-colon-here").resolve()

    def test_callable_ref_is_directly_callable(self):
        assert CallableRef(f"{__name__}:_answer")(x=3) == 6


class TestFingerprint:
    def test_identical_specs_hash_identically(self):
        assert fingerprint(_point()) == fingerprint(_point())

    @pytest.mark.parametrize(
        "change",
        [
            {"rate": 3e6},
            {"seed": 2},
            {"n_requests": 700},
            {"tag": "other"},
            {"warmup_fraction": 0.2},
        ],
    )
    def test_any_field_change_changes_hash(self, change):
        assert fingerprint(_point(**change)) != fingerprint(_point())

    def test_builder_kwargs_affect_hash(self):
        a = _point()
        b = _point()
        b.builder = ref(_builder, n_cores=8)
        assert fingerprint(a) != fingerprint(b)

    def test_service_distribution_affects_hash(self):
        a = _point()
        b = _point()
        b.service = Bimodal(500.0, 5_000.0, 0.1)
        assert fingerprint(a) != fingerprint(b)

    def test_salt_and_schema_guard(self):
        assert fingerprint(_point()) != fingerprint(_point(), salt="v2")

    def test_job_shape_is_content_hashed_into_the_cache_key(self):
        # Same builder/rate/seed with and without a job structure must
        # never share a cache key: grouped traffic is different traffic.
        from repro.workload.jobs import ChoiceDegree, FixedDegree, JobShape

        flat = _point()
        fanout = _point(jobs=JobShape(fanout=FixedDegree(4)))
        assert fingerprint(flat) != fingerprint(fanout)
        # ... and distinct shapes must hash apart from each other, even
        # when they only differ in weights or sibling-connection mode.
        variants = [
            _point(jobs=JobShape(fanout=FixedDegree(2))),
            _point(jobs=JobShape(fanout=ChoiceDegree((1, 4)))),
            _point(jobs=JobShape(fanout=ChoiceDegree((1, 4), (0.9, 0.1)))),
            _point(jobs=JobShape(fanout=FixedDegree(2),
                                 sibling_connections="distinct")),
            _point(jobs=JobShape(core_demand=FixedDegree(2))),
        ]
        prints = [fingerprint(v) for v in (flat, fanout, *variants)]
        assert len(set(prints)) == len(prints)

    def test_sweep_spec_forwards_jobs_to_points(self):
        from repro.workload.jobs import FixedDegree, JobShape

        shape = JobShape(fanout=FixedDegree(2))
        sweep = SweepSpec(
            builder=ref(_builder, n_cores=4), service=Fixed(500.0),
            rates_rps=[1e6, 2e6], n_requests=100, jobs=shape,
        )
        assert all(p.jobs is shape for p in sweep.points())

    def test_numpy_scalars_and_arrays_hash_stably(self):
        spec = TaskSpec(fn=ref(_answer, x=int(np.int64(4))))
        assert fingerprint(spec) == fingerprint(spec)
        arr = np.arange(6, dtype=np.float64)
        assert fingerprint({"a": arr}) == fingerprint({"a": arr.copy()})
        assert fingerprint({"a": arr}) != fingerprint({"a": arr * 2})

    def test_unhashable_object_raises_spec_error(self):
        with pytest.raises(SpecError, match="canonically hash"):
            fingerprint(object())

    def test_sweep_spec_expands_to_matching_points(self):
        sweep = SweepSpec(
            builder=ref(_builder, n_cores=4),
            service=Fixed(500.0),
            rates_rps=[1e6, 2e6],
            n_requests=600,
            seed=1,
            slo_ns=10_000.0,
            tag="t",
        )
        points = sweep.points()
        assert [p.rate_rps for p in points] == [1e6, 2e6]
        assert fingerprint(points[0]) == fingerprint(_point(rate=1e6))


class TestCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = fingerprint(_point())
        assert cache.get(key) is None
        cache.put(key, {"v": 1})
        assert cache.get(key) == {"v": 1}
        assert key in cache
        assert len(cache) == 1

    def test_sharded_layout(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = fingerprint(_point())
        cache.put(key, 1)
        assert (tmp_path / key[:2] / f"{key}.pkl").exists()

    def test_corrupt_entry_treated_as_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = fingerprint(_point())
        cache.put(key, 1)
        with open(cache.path_for(key), "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get(key) is None
        assert key not in cache

    def test_cache_path_colliding_with_file_rejected(self, tmp_path):
        collider = tmp_path / "occupied"
        collider.write_text("x")
        with pytest.raises(NotADirectoryError):
            ResultCache(str(collider))

    def test_invalid_key_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ValueError):
            cache.path_for("../escape")

    def test_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for spec in (_point(rate=1e6), _point(rate=2e6)):
            cache.put(fingerprint(spec), 1)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


class TestExecution:
    def test_execute_point_is_deterministic(self):
        a = execute_point(_point())
        b = execute_point(_point())
        assert a.latency.p99 == b.latency.p99
        assert a.throughput_rps == b.throughput_rps

    def test_task_spec_executes_fn(self):
        results = SweepRunner(jobs=1).run(
            [TaskSpec(fn=ref(_answer, x=5), tag="task")]
        )
        assert results[0].value == 10
        assert results[0].tag == "task"

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = [_point(rate=r, n_requests=500) for r in (1e6, 2e6, 4e6, 6e6)]
        serial = SweepRunner(jobs=1).run(specs)
        parallel = SweepRunner(jobs=4).run(specs)
        for s, p in zip(serial, parallel):
            assert s.latency.p99 == p.latency.p99
            assert s.latency.mean == p.latency.mean
            assert s.throughput_rps == p.throughput_rps
            assert s.violation_ratio == p.violation_ratio
            assert s.sim_time_ns == p.sim_time_ns

    def test_results_returned_in_submission_order(self):
        rates = [6e6, 1e6, 4e6, 2e6]
        results = SweepRunner(jobs=4).run(
            [_point(rate=r, n_requests=400) for r in rates]
        )
        assert [r.rate_rps for r in results] == rates

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        specs = [_point(rate=r, n_requests=400) for r in (1e6, 2e6, 3e6)]
        runner = SweepRunner(jobs=1, cache=cache)
        first = runner.run(specs)
        assert runner.last_stats.cache_hits == 0
        assert all(not r.cache_hit for r in first)
        second = runner.run(specs)
        assert runner.last_stats.cache_hits == len(specs)
        assert all(r.cache_hit for r in second)
        for a, b in zip(first, second):
            assert a.latency.p99 == b.latency.p99

    def test_seed_change_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run([_point(seed=1, n_requests=400)])
        runner.run([_point(seed=2, n_requests=400)])
        assert runner.last_stats.cache_hits == 0

    def test_scale_change_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run([_point(n_requests=400)])
        runner.run([_point(n_requests=500)])
        assert runner.last_stats.cache_hits == 0

    def test_partial_hits_execute_only_misses(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = SweepRunner(jobs=1, cache=cache)
        runner.run([_point(rate=1e6, n_requests=400)])
        runner.run([_point(rate=r, n_requests=400) for r in (1e6, 2e6)])
        assert runner.last_stats.cache_hits == 1
        assert runner.last_stats.executed == 1

    def test_cached_parallel_equals_fresh_serial(self, tmp_path):
        specs = [_point(rate=r, n_requests=400) for r in (1e6, 3e6)]
        fresh = SweepRunner(jobs=1).run(specs)
        cache = ResultCache(str(tmp_path))
        SweepRunner(jobs=2, cache=cache).run(specs)
        replayed = SweepRunner(jobs=2, cache=cache).run(specs)
        for a, b in zip(fresh, replayed):
            assert a.latency.p99 == b.latency.p99


class TestConfigPlumbing:
    def test_defaults_are_serial_and_uncached(self):
        cfg = get_config()
        assert cfg.effective_jobs >= 1
        assert cfg.jobs == 1
        assert cfg.use_cache is False

    def test_overrides_restore_previous_state(self, tmp_path):
        before = get_config().jobs
        with overrides(jobs=3, use_cache=True, cache_dir=str(tmp_path)):
            assert get_config().jobs == 3
            assert get_config().use_cache is True
        assert get_config().jobs == before
        assert get_config().use_cache is False

    def test_run_points_obeys_overrides_and_counts(self, tmp_path):
        specs = [_point(rate=r, n_requests=400) for r in (1e6, 2e6)]
        with overrides(jobs=1, use_cache=True, cache_dir=str(tmp_path)):
            counters = get_config().counters
            before = counters.snapshot()
            run_points(specs, label="test")
            delta = counters.delta(before)
            assert delta.points == 2
            assert delta.cache_hits == 0
            run_points(specs, label="test")
            delta = counters.delta(before)
            assert delta.points == 4
            assert delta.cache_hits == 2

    def test_run_points_explicit_config_wins(self, tmp_path):
        cfg = RunnerConfig(jobs=1, use_cache=True, cache_dir=str(tmp_path))
        run_points([_point(n_requests=400)], config=cfg)
        run_points([_point(n_requests=400)], config=cfg)
        assert cfg.counters.cache_hits == 1


class TestFigureDeterminism:
    """End-to-end: a real figure module produces identical tables under
    ``--jobs 1`` (serial, uncached) and ``--jobs 4`` (pool + cache)."""

    def test_fig10_rows_identical_serial_vs_parallel(self, tmp_path,
                                                     monkeypatch):
        from repro.experiments import fig10_comparison

        monkeypatch.setattr(fig10_comparison, "RATES_MRPS", [0.5, 2.0])
        monkeypatch.setattr(
            fig10_comparison,
            "_SYSTEMS",
            {
                "ix": fig10_comparison._SYSTEMS["ix"],
                "nebula": fig10_comparison._SYSTEMS["nebula"],
            },
        )
        with overrides(jobs=1, use_cache=False):
            serial = fig10_comparison.run(scale=0.02)
        with overrides(jobs=4, use_cache=True, cache_dir=str(tmp_path)):
            parallel = fig10_comparison.run(scale=0.02)
        assert serial.rows == parallel.rows
        assert serial.series == parallel.series
        # And a cached replay is still identical.
        with overrides(jobs=4, use_cache=True, cache_dir=str(tmp_path)):
            replay = fig10_comparison.run(scale=0.02)
        assert replay.rows == serial.rows


class TestProgress:
    def test_progress_callback_sees_completion(self):
        seen = []
        runner = SweepRunner(jobs=1, progress=seen.append, label="demo")
        runner.run([_point(rate=r, n_requests=400) for r in (1e6, 2e6)])
        assert seen[-1].finished is True
        assert seen[-1].done == seen[-1].total == 2
        assert all(s.label == "demo" for s in seen)

    def test_progress_printer_writes_summary_to_non_tty(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream=stream)
        printer(SweepProgress(label="x", total=4, done=2, cache_hits=1,
                              elapsed_s=0.5, finished=False))
        printer(SweepProgress(label="x", total=4, done=4, cache_hits=1,
                              elapsed_s=1.0, finished=True))
        output = stream.getvalue()
        assert "x" in output and "4/4" in output

    def test_eta_excludes_cache_hits(self):
        progress = SweepProgress(label="x", total=10, done=5, cache_hits=3,
                                 elapsed_s=2.0, finished=False)
        assert progress.executed == 2
        # 2 executed in 2s -> 1s/point -> 5 remaining points ~ 5s.
        assert progress.eta_s == pytest.approx(5.0)
