"""Unit tests for the shared RpcSystem harness behaviour."""

import pytest

from repro.schedulers.base import RpcSystem, SystemStats
from repro.schedulers.rss import RssSystem
from repro.workload.service import Fixed
from repro.workload.arrivals import DeterministicArrivals
from repro.api import run_workload
from tests.conftest import make_request


class TestLifecycle:
    def test_offer_charges_delivery_latency(self, sim, streams):
        system = RssSystem(sim, streams, 2)  # hw-terminated default: 30 ns
        req = make_request(service_time=100.0)
        system.offer(req)
        system.expect(1)
        sim.run(until=10**9)
        assert req.enqueued == 30.0
        assert req.latency == 130.0

    def test_expect_stops_simulation(self, sim, streams):
        system = RssSystem(sim, streams, 2)
        system.offer(make_request())
        system.expect(1)
        sim.schedule(10**8, lambda: None)  # would keep the heap alive
        sim.run(until=10**10)
        assert sim.now < 10**8  # stopped at completion, not at the event

    def test_expect_validation(self, sim, streams):
        with pytest.raises(ValueError):
            RssSystem(sim, streams, 2).expect(0)

    def test_completion_hooks_fire_in_order(self, sim, streams):
        system = RssSystem(sim, streams, 2)
        calls = []
        system.completion_hooks.append(lambda r: calls.append(("a", r.req_id)))
        system.completion_hooks.append(lambda r: calls.append(("b", r.req_id)))
        system.offer(make_request(req_id=7))
        system.expect(1)
        sim.run(until=10**9)
        assert calls == [("a", 7), ("b", 7)]

    def test_idle_cores_listing(self, sim, streams):
        system = RssSystem(sim, streams, 3)
        assert len(system.idle_cores()) == 3
        system.offer(make_request(service_time=10_000.0))
        sim.run(until=100.0)
        assert len(system.idle_cores()) == 2

    def test_utilization_bounds(self, sim, streams):
        system = RssSystem(sim, streams, 2)
        assert system.utilization(0.0) == 0.0
        result = run_workload(
            system, sim, streams, DeterministicArrivals(1e6), Fixed(500.0),
            n_requests=100, warmup_fraction=0.0,
        )
        assert 0.0 < result.utilization <= 1.0

    def test_invalid_core_count(self, sim, streams):
        with pytest.raises(ValueError):
            RssSystem(sim, streams, 0)


class TestStats:
    def test_bump_is_deprecated_and_lands_in_adhoc_namespace(self):
        stats = SystemStats()
        with pytest.warns(DeprecationWarning):
            stats.bump("x")
        with pytest.warns(DeprecationWarning):
            stats.bump("x", 2.5)
        assert stats.extra["adhoc.x"] == 3.5

    def test_scoped_adapter_accumulates(self):
        stats = SystemStats()
        scoped = stats.scoped("sched")
        scoped.incr("x")
        scoped.incr("x", 2.5)
        assert stats.extra["sched.x"] == 3.5
        assert scoped.get("x") == 3.5

    def test_scoped_incr_preserves_int_counters(self):
        stats = SystemStats()
        scoped = stats.scoped("sched")
        scoped.incr("migrations")
        scoped.incr("migrations", 11)
        value = stats.extra["sched.migrations"]
        assert value == 12
        assert isinstance(value, int)

    def test_extra_view_is_read_only(self):
        stats = SystemStats()
        stats.scoped("sched").put("x", 1)
        with pytest.raises(TypeError):
            stats.extra["y"] = 2  # type: ignore[index]

    def test_offered_and_completed_counters(self, sim, streams):
        system = RssSystem(sim, streams, 2)
        run_workload(
            system, sim, streams, DeterministicArrivals(1e6), Fixed(100.0),
            n_requests=50, warmup_fraction=0.0,
        )
        assert system.stats.offered == 50
        assert system.stats.completed == 50
        assert system.stats.dropped == 0

    def test_abstract_base_cannot_instantiate(self, sim, streams):
        with pytest.raises(TypeError):
            RpcSystem(sim, streams, 2)  # abstract methods missing
