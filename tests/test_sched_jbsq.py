"""Unit tests for JBSQ(n) hardware schedulers."""

import pytest

from repro.api import run_workload
from repro.schedulers.jbsq import JbsqSystem, ideal_cfcfs, nanopu, nebula, rpcvalet
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.service import Bimodal, Fixed
from tests.conftest import make_request


class TestBound:
    def test_occupancy_never_exceeds_bound(self, sim, streams):
        system = JbsqSystem(sim, streams, 4, bound=2, dispatch_ns=5.0)
        max_seen = [0]
        original = system._arrive_at_core

        def spy(core_id, request):
            original(core_id, request)
            max_seen[0] = max(max_seen[0], max(system.occupancy))

        system._arrive_at_core = spy
        run_workload(
            system, sim, streams,
            DeterministicArrivals(20e6), Fixed(1_000.0),
            n_requests=400, warmup_fraction=0.0,
        )
        assert max_seen[0] <= 2

    def test_idle_core_preferred(self, sim, streams):
        system = JbsqSystem(sim, streams, 3, bound=2, dispatch_ns=0.0)
        a = make_request(req_id=0, service_time=10_000.0)
        b = make_request(req_id=1, service_time=10_000.0)
        system.offer(a)
        system.offer(b)
        system.expect(2)
        sim.run(until=10**9)
        assert a.core_id != b.core_id  # second went to an idle core

    def test_central_queue_backs_up_when_all_full(self, sim, streams):
        system = JbsqSystem(sim, streams, 2, bound=1, dispatch_ns=0.0)
        reqs = [make_request(req_id=i, service_time=1_000.0) for i in range(5)]
        for r in reqs:
            system.offer(r)
        sim.run(until=100.0)  # past NIC delivery; cores now saturated
        assert len(system.central) >= 1  # overflow waits centrally
        system.expect(5)
        sim.run(until=10**9)
        assert all(r.completed for r in reqs)

    def test_invalid_bound(self, sim, streams):
        with pytest.raises(ValueError):
            JbsqSystem(sim, streams, 2, bound=0)


class TestIdealCfcfs:
    def test_fcfs_completion_order_with_fixed_service(self, sim, streams):
        system = ideal_cfcfs(sim, streams, 2)
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(5e6), Fixed(1_000.0),
            n_requests=100, warmup_fraction=0.0,
        )
        finish_order = [r.req_id for r in
                        sorted(result.requests, key=lambda r: r.finished)]
        assert finish_order == sorted(finish_order)

    def test_matches_mm_k_low_load_latency(self, sim, streams):
        """At very low load, latency = delivery + service exactly."""
        system = ideal_cfcfs(sim, streams, 8)
        result = run_workload(
            system, sim, streams,
            PoissonArrivals(1e5), Fixed(1_000.0),
            n_requests=200, warmup_fraction=0.0,
        )
        assert result.latency.mean == pytest.approx(1_030.0, abs=5.0)

    def test_startup_overhead_consumes_capacity(self, sim, streams):
        """The Fig. 3 knob: overhead extends each request's occupancy."""
        system = ideal_cfcfs(sim, streams, 1, startup_overhead_ns=500.0)
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(9e5),  # 1.11us gap > 1us service alone
            Fixed(1_000.0),
            n_requests=300, warmup_fraction=0.5,
        )
        # service + overhead = 1.5us > interarrival -> overload, queue grows
        assert result.latency.p99 > 10_000.0


class TestNamedConfigs:
    def test_nebula_does_not_preempt(self, sim, streams):
        system = nebula(sim, streams, 4)
        assert system.quantum_ns is None
        assert system.bound == 2

    def test_nanopu_preempts_longs(self, sim, streams):
        system = nanopu(sim, streams, 4, quantum_ns=1_000.0)
        result = run_workload(
            system, sim, streams,
            PoissonArrivals(1e6), Bimodal(500.0, 100_000.0, 0.05),
            n_requests=400, warmup_fraction=0.0,
        )
        assert system.metrics.get("sched.preemptions").value > 0
        assert len(result.requests) == 400

    def test_rpcvalet_single_depth(self, sim, streams):
        system = rpcvalet(sim, streams, 4)
        assert system.bound == 1
        assert system.dispatch_ns == pytest.approx(35.0)

    def test_nebula_hol_behind_long(self, sim, streams):
        """Nebula's pathology: a short committed behind an in-service
        long waits out the long's residual (no preemption, no stealing)."""
        system = nebula(sim, streams, 2)
        longs = [make_request(req_id=i, service_time=500_000.0) for i in (0, 1)]
        short = make_request(req_id=2, service_time=100.0)
        for r in longs:
            system.offer(r)
        system.offer(short)
        system.expect(3)
        sim.run(until=10**12)
        assert short.latency > 400_000.0  # stuck behind a long


class TestConservation:
    def test_preemptive_jbsq_conserves_requests(self, sim, streams):
        system = nanopu(sim, streams, 4)
        result = run_workload(
            system, sim, streams,
            PoissonArrivals(4e6), Bimodal(500.0, 20_000.0, 0.1),
            n_requests=600, warmup_fraction=0.0,
        )
        ids = [r.req_id for r in result.requests]
        assert len(ids) == len(set(ids)) == 600
