"""Unit tests for RSS d-FCFS and IX systems."""

import pytest

from repro.api import run_workload
from repro.schedulers.rss import IxSystem, RssSystem
from repro.workload.arrivals import DeterministicArrivals
from repro.workload.service import Fixed
from tests.conftest import make_request


def run_small(system_cls, sim, streams, n_cores=4, n=200, rate_rps=2e6,
              service_ns=500.0, **kwargs):
    system = system_cls(sim, streams, n_cores, **kwargs)
    result = run_workload(
        system, sim, streams,
        DeterministicArrivals(rate_rps), Fixed(service_ns),
        n_requests=n, warmup_fraction=0.0,
    )
    return system, result


class TestRss:
    def test_all_requests_complete(self, sim, streams):
        system, result = run_small(RssSystem, sim, streams)
        assert system.stats.completed == 200
        assert len(result.requests) == 200

    def test_per_flow_fifo_order(self, sim, streams):
        """d-FCFS: requests of one connection finish in arrival order."""
        system, result = run_small(RssSystem, sim, streams)
        by_conn = {}
        for r in sorted(result.requests, key=lambda r: r.finished):
            by_conn.setdefault(r.connection, []).append(r.arrival)
        for arrivals in by_conn.values():
            assert arrivals == sorted(arrivals)

    def test_same_connection_stays_on_one_core(self, sim, streams):
        system, result = run_small(RssSystem, sim, streams)
        cores_by_conn = {}
        for r in result.requests:
            cores_by_conn.setdefault(r.connection, set()).add(r.core_id)
        assert all(len(cores) == 1 for cores in cores_by_conn.values())

    def test_queue_len_at_arrival_recorded(self, sim, streams):
        system, result = run_small(RssSystem, sim, streams, rate_rps=10e6)
        assert all(r.queue_len_at_arrival is not None for r in result.requests)
        assert any(r.queue_len_at_arrival > 0 for r in result.requests)

    def test_head_of_line_blocking(self, sim, streams):
        """A long request in a queue delays the shorts behind it even if
        other cores sit idle -- RSS's defining pathology."""
        system = RssSystem(sim, streams, 2, steering_policy="round_robin")
        long_req = make_request(req_id=0, service_time=100_000.0)
        shorts = [make_request(req_id=i, service_time=100.0, arrival=float(i))
                  for i in (1, 2, 3)]
        system.offer(long_req)
        for r in shorts:
            system.offer(r)
        system.expect(4)
        sim.run(until=10**12)
        # round robin: long -> q0, shorts 1,3 -> q1/q?; short #2 behind long
        blocked = [r for r in shorts if r.core_id == long_req.core_id]
        assert blocked, "expected at least one short behind the long request"
        assert all(r.latency > 100_000.0 for r in blocked)

    def test_utilization_positive(self, sim, streams):
        system, result = run_small(RssSystem, sim, streams)
        assert 0 < result.utilization <= 1


class TestIx:
    def test_batch_overhead_amortized(self, sim, streams):
        """IX per-request latency at high queue depth is lower than the
        full batch cost would suggest."""
        system, result = run_small(
            IxSystem, sim, streams, n_cores=1, rate_rps=4e6,
            batch_overhead_ns=300.0, batch_size=8,
        )
        # Every request completed; scheduling ops charged per batch,
        # far fewer than per request.
        assert system.stats.completed == 200
        assert system.stats.scheduling_ops < 200

    def test_per_request_overhead_inflates_service(self, sim, streams):
        _, cheap = run_small(IxSystem, sim, streams, n_cores=2, rate_rps=1e5)
        sim2 = type(sim)()
        from repro.sim.rng import RandomStreams

        streams2 = RandomStreams(12345)
        _, costly = run_small(
            IxSystem, sim2, streams2, n_cores=2, rate_rps=1e5,
            per_request_overhead_ns=2_000.0,
        )
        assert costly.latency.mean > cheap.latency.mean + 1_500.0

    def test_invalid_batch_size(self, sim, streams):
        with pytest.raises(ValueError):
            IxSystem(sim, streams, 2, batch_size=0)
