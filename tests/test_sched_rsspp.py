"""Unit tests for the RSS++ (elastic RSS) baseline."""

import pytest

from repro.api import run_workload
from repro.schedulers.rss import RssSystem
from repro.schedulers.rss_plus_plus import RssPlusPlusSystem
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import DeterministicArrivals
from repro.workload.connections import ConnectionPool
from repro.workload.service import Fixed


def run_system(system_cls, seed=12345, **kwargs):
    sim, streams = Simulator(), RandomStreams(seed)
    system = system_cls(sim, streams, 4, **kwargs)
    result = run_workload(
        system, sim, streams,
        DeterministicArrivals(3e6), Fixed(1_000.0),
        n_requests=2_000, warmup_fraction=0.1,
        connections=ConnectionPool(2),  # two flows -> persistent skew
    )
    return system, result


class TestRebalancing:
    def test_rebalances_fire_periodically(self):
        system, _ = run_system(RssPlusPlusSystem,
                               rebalance_interval_ns=20_000.0)
        # 2000 reqs at 3 MRPS ~ 667 us of traffic -> ~33 rebalances.
        assert system.rebalances >= 10

    def test_hot_flows_get_remapped(self):
        system, result = run_system(RssPlusPlusSystem)
        assert system.moves > 0
        # After remapping, requests of a flow execute on >1 core over
        # the run (the table changed mid-stream).
        cores_by_conn = {}
        for r in result.requests:
            cores_by_conn.setdefault(r.connection, set()).add(r.core_id)
        assert any(len(cores) > 1 for cores in cores_by_conn.values())

    def test_beats_static_rss_under_flow_skew(self):
        """Two hot flows colliding on one queue: RSS++ splits them after
        its first rebalances; static RSS never does."""
        _, static = run_system(RssSystem, steering_policy="connection")
        _, elastic = run_system(RssPlusPlusSystem)
        if static.latency.p99 > 2_000.0:  # flows actually collided
            assert elastic.latency.p99 < static.latency.p99

    def test_no_move_when_balanced(self, sim, streams):
        system = RssPlusPlusSystem(sim, streams, 4)
        system._rebalance()  # empty queues: a no-op
        assert system.moves == 0

    def test_conservation(self):
        system, result = run_system(RssPlusPlusSystem)
        ids = [r.req_id for r in result.requests]
        assert len(set(ids)) == len(ids)

    def test_queued_requests_not_touched(self, sim, streams):
        """The table rewrite redirects future traffic only: requests
        already queued stay on their original queue."""
        system = RssPlusPlusSystem(sim, streams, 2,
                                   rebalance_interval_ns=1_000.0)
        from tests.conftest import make_request

        blocked = make_request(req_id=0, service_time=50_000.0, connection=0)
        queued = make_request(req_id=1, service_time=100.0, connection=0)
        system.offer(blocked)
        system.offer(queued)
        sim.run(until=5_000.0)  # several rebalances elapse
        assert not queued.completed  # still behind the long request

    def test_validation(self, sim, streams):
        with pytest.raises(ValueError):
            RssPlusPlusSystem(sim, streams, 2, rebalance_interval_ns=0.0)
        with pytest.raises(ValueError):
            RssPlusPlusSystem(sim, streams, 2, moves_per_rebalance=0)
