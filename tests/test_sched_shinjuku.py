"""Unit tests for the Shinjuku centralized preemptive system."""

import pytest

from repro.api import run_workload
from repro.schedulers.centralized import ShinjukuSystem
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.service import Bimodal, Fixed
from tests.conftest import make_request


class TestDispatch:
    def test_dispatcher_core_never_executes(self, sim, streams):
        system = ShinjukuSystem(sim, streams, 4)
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(1e6), Fixed(500.0),
            n_requests=100, warmup_fraction=0.0,
        )
        assert all(r.core_id != 0 for r in result.requests)
        assert system.cores[0].busy_ns == 0.0

    def test_dispatch_cost_appears_in_latency(self, sim, streams):
        system = ShinjukuSystem(sim, streams, 2, dispatch_ns=200.0)
        req = make_request(service_time=500.0)
        system.offer(req)
        system.expect(1)
        sim.run(until=10**9)
        # delivery (30 hw-terminated default) + dispatch 200 + service 500
        assert req.latency >= 700.0

    def test_dispatcher_serializes_at_capacity(self, sim, streams):
        """Offered load above the dispatcher cap backs up the central
        queue even though workers are plentiful."""
        system = ShinjukuSystem(sim, streams, 16, dispatch_ns=200.0)
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(8e6),  # > 5 MRPS dispatcher capacity
            Fixed(100.0),  # workers are nearly free
            n_requests=2_000, warmup_fraction=0.5,
        )
        # Sustained overload at the dispatcher: latency grows way past
        # service + dispatch.
        assert result.latency.p99 > 10_000.0

    def test_dispatcher_capacity_property(self, sim, streams):
        system = ShinjukuSystem(sim, streams, 2, dispatch_ns=200.0)
        assert system.dispatcher_capacity_rps == pytest.approx(5e6)

    def test_needs_two_cores(self, sim, streams):
        with pytest.raises(ValueError):
            ShinjukuSystem(sim, streams, 1)


class TestPreemption:
    def test_long_requests_preempted_at_quantum(self, sim, streams):
        system = ShinjukuSystem(sim, streams, 2, quantum_ns=5_000.0)
        req = make_request(service_time=20_000.0)
        system.offer(req)
        system.expect(1)
        sim.run(until=10**9)
        assert req.completed
        assert system.metrics.get("sched.preemptions").value >= 3

    def test_preemption_protects_shorts_from_longs(self, sim, streams):
        """The headline Shinjuku property: shorts overtake a long
        request that would otherwise monopolize the only worker."""
        system = ShinjukuSystem(sim, streams, 2, quantum_ns=5_000.0,
                                switch_overhead_ns=0.0, dispatch_ns=10.0)
        long_req = make_request(req_id=0, service_time=500_000.0)
        short = make_request(req_id=1, service_time=500.0, arrival=0.0)
        system.offer(long_req)
        system.offer(short)
        system.expect(2)
        sim.run(until=10**12)
        assert short.latency < 50_000.0  # waited a few quanta, not 500us
        assert long_req.completed

    def test_bimodal_tail_beats_fcfs_single_worker(self, sim, streams):
        system = ShinjukuSystem(sim, streams, 4, quantum_ns=5_000.0)
        result = run_workload(
            system, sim, streams,
            PoissonArrivals(1e6), Bimodal(500.0, 200_000.0, 0.01),
            n_requests=1_500, warmup_fraction=0.1,
        )
        # p99 covers shorts; with preemption they never wait a full long.
        assert result.latency.p99 < 200_000.0

    def test_conservation(self, sim, streams):
        system = ShinjukuSystem(sim, streams, 4)
        result = run_workload(
            system, sim, streams,
            PoissonArrivals(2e6), Bimodal(500.0, 50_000.0, 0.05),
            n_requests=500, warmup_fraction=0.0,
        )
        assert len({r.req_id for r in result.requests}) == 500
