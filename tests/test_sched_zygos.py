"""Unit tests for the ZygOS work-stealing system."""

from repro.api import run_workload
from repro.schedulers.work_stealing import ZygosSystem
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.service import Bimodal, Fixed
from tests.conftest import make_request


class TestStealing:
    def test_idle_cores_steal_backlog(self, sim, streams):
        """With skewed steering, stealing moves work to idle cores."""
        system = ZygosSystem(sim, streams, 4, steering_policy="connection")
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(5e6), Fixed(1_000.0),
            n_requests=500, warmup_fraction=0.0,
        )
        stolen = sum(1 for r in result.requests if r.steals > 0)
        assert stolen > 0
        cores_used = {r.core_id for r in result.requests}
        assert len(cores_used) > 1  # work spread beyond the hashed queues

    def test_steal_cost_charged(self, sim, streams):
        system = ZygosSystem(sim, streams, 4)
        run_workload(
            system, sim, streams,
            DeterministicArrivals(5e6), Fixed(1_000.0),
            n_requests=300, warmup_fraction=0.0,
        )
        if system.steal_hits:
            assert system.stats.scheduling_ns >= system.steal_hits * 200.0

    def test_stolen_request_completes_exactly_once(self, sim, streams):
        system = ZygosSystem(sim, streams, 4)
        result = run_workload(
            system, sim, streams,
            PoissonArrivals(3e6), Bimodal(500.0, 50_000.0, 0.05),
            n_requests=400, warmup_fraction=0.0,
        )
        ids = [r.req_id for r in result.requests]
        assert len(ids) == len(set(ids)) == 400

    def test_rescues_shorts_behind_long(self, sim, streams):
        """A short stuck behind a long request gets stolen by an idle
        core instead of waiting the full long service time."""
        system = ZygosSystem(sim, streams, 4, steering_policy="round_robin")
        reqs = [
            make_request(req_id=0, service_time=1_000_000.0),
            make_request(req_id=1, service_time=100.0),
            make_request(req_id=2, service_time=100.0),
            make_request(req_id=3, service_time=100.0),
            # This one hashes to core 0's queue, behind the long request.
            make_request(req_id=4, service_time=100.0),
        ]
        for r in reqs:
            system.offer(r)
        system.expect(5)
        sim.run(until=10**12)
        assert reqs[4].latency < 1_000_000.0  # rescued, not blocked

    def test_no_stealing_when_single_core(self, sim, streams):
        system = ZygosSystem(sim, streams, 1)
        result = run_workload(
            system, sim, streams,
            DeterministicArrivals(1e5), Fixed(1_000.0),
            n_requests=50, warmup_fraction=0.0,
        )
        assert system.steal_hits == 0
        assert len(result.requests) == 50

    def test_hit_rate_bounded(self, sim, streams):
        system = ZygosSystem(sim, streams, 4)
        run_workload(
            system, sim, streams,
            PoissonArrivals(3e6), Fixed(1_000.0),
            n_requests=300, warmup_fraction=0.0,
        )
        assert 0.0 <= system.steal_hit_rate <= 1.0
