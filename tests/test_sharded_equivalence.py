"""Serial-vs-sharded equivalence battery.

The conservative parallel-in-time coordinator
(:mod:`repro.datacenter.sharded`) claims **bit-identical** results to
the serial engine -- not statistically close, identical.  This battery
runs one fixed datacenter workload serially and through every sharded
configuration that matters (1/2/3/4 shards, in-process and process
transports, fault-free, faulted, and multi-tenant) and compares:

* per-request fingerprints (every timestamp, placement and counter on
  every measured request, ``repr``-exact floats);
* run scalars (sim time, throughput, utilization, drops, ``extra``);
* the full telemetry snapshot, minus engine-internal ``sim.*``
  instruments (each shard legitimately runs its own heap) and the
  sharded tier's own ``shard.*`` overhead counters.
"""

from __future__ import annotations

from typing import Optional

import pytest

from repro.api import run_workload
from repro.cluster.topology import RackConfig
from repro.datacenter.sharded import build_sharded_topology
from repro.datacenter.topology import DatacenterConfig, build_topology
from repro.faults import FaultEvent, FaultPlan, RetryPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.sharded import ShardedSimulator
from repro.workload.arrivals import PoissonArrivals
from repro.workload.service import Exponential
from repro.workload.tenants import (
    TenantClass,
    TenantConnectionPool,
    TenantMix,
)

#: 4 racks x 2 servers x 4 cores = 32 cores at ~70% load.
N_RACKS = 4
SERVICE_NS = 1000.0
RATE_RPS = 0.7 * 32 / SERVICE_NS * 1e9
N_REQUESTS = 1500
SEED = 11

TENANTS = (
    TenantClass("web", 0.5, slo_ns=10 * SERVICE_NS, n_connections=64),
    TenantClass("batch", 0.5, slo_ns=50 * SERVICE_NS, n_connections=256),
)

#: Datacenter-applicable fault kinds (targets are racks), overlapping so
#: ship-time admission, live spine faults and retries all interact.
FAULT_PLAN = FaultPlan(
    events=(
        FaultEvent(time_ns=8_000.0, kind="server_crash", target=1,
                   duration_ns=25_000.0),
        FaultEvent(time_ns=12_000.0, kind="nic_drop", target=0,
                   magnitude=0.3, duration_ns=25_000.0),
        FaultEvent(time_ns=18_000.0, kind="spine_degrade", target=2,
                   magnitude=0.25, duration_ns=20_000.0),
        FaultEvent(time_ns=25_000.0, kind="spine_partition", target=3,
                   duration_ns=15_000.0),
    ),
    retry=RetryPolicy(timeout_ns=40_000.0, max_retries=3,
                      backoff_base_ns=15_000.0, backoff_cap_ns=80_000.0,
                      jitter=0.5),
)


def _config(tenants: bool = False) -> DatacenterConfig:
    return DatacenterConfig(
        n_racks=N_RACKS,
        rack=RackConfig(
            n_servers=2,
            cores_per_server=4,
            system="altocumulus",
            policy="power_of_d",
            d=2,
        ),
        policy="shortest_wait",
        tenants=TENANTS if tenants else (),
    )


def _run(
    shards: Optional[int],
    mode: str = "process",
    faults: Optional[FaultPlan] = None,
    tenants: bool = False,
):
    config = _config(tenants=tenants)
    streams = RandomStreams(SEED)
    if shards is None:
        sim = Simulator()
        system = build_topology(sim, streams, config)
    else:
        sim = ShardedSimulator()
        system = build_sharded_topology(sim, streams, config, shards,
                                        mode=mode)
    connections = (
        TenantConnectionPool(TenantMix(TENANTS)) if tenants else None
    )
    return run_workload(
        system,
        sim,
        streams,
        arrivals=PoissonArrivals(RATE_RPS),
        service=Exponential(SERVICE_NS),
        n_requests=N_REQUESTS,
        connections=connections,
        faults=faults,
    )


def _request_fingerprint(result):
    return [
        (
            r.req_id,
            repr(r.arrival),
            repr(r.enqueued),
            repr(r.started),
            repr(r.finished),
            r.core_id,
            r.group_id,
            r.migrations,
            r.steals,
            r.dropped,
        )
        for r in result.requests
    ]


def _scalar_fingerprint(result):
    return (
        repr(result.sim_time_ns),
        repr(result.throughput_rps),
        repr(result.utilization),
        result.dropped,
        {key: repr(value) for key, value in sorted(result.extra.items())},
        repr(result.latency.p50),
        repr(result.latency.p99),
        repr(result.latency.mean),
    )


def _curated_metrics(result):
    """The telemetry snapshot minus legitimately-diverging keys.

    ``sim.*`` (at any nesting depth) are engine internals -- event
    counts and free-list sizes differ across heaps by construction.
    ``shard.*`` exists only in sharded runs.  Everything else -- every
    ``system.*``, switch, policy, fault and tenant instrument at every
    level -- must match exactly.
    """
    return {
        key: value
        for key, value in result.metrics.items()
        if "sim" not in key.split(".") and not key.startswith("shard.")
    }


def _assert_equivalent(serial, sharded):
    assert _request_fingerprint(serial) == _request_fingerprint(sharded)
    assert _scalar_fingerprint(serial) == _scalar_fingerprint(sharded)
    assert _curated_metrics(serial) == _curated_metrics(sharded)


@pytest.fixture(scope="module")
def serial_result():
    return _run(shards=None)


@pytest.fixture(scope="module")
def serial_faulted_result():
    return _run(shards=None, faults=FAULT_PLAN)


@pytest.fixture(scope="module")
def serial_tenant_result():
    return _run(shards=None, tenants=True)


@pytest.mark.parametrize("shards", [1, 2, 3, 4])
@pytest.mark.parametrize("mode", ["inprocess", "process"])
def test_fault_free_bit_identity(serial_result, shards, mode):
    _assert_equivalent(serial_result, _run(shards=shards, mode=mode))


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_faulted_bit_identity(serial_faulted_result, shards):
    _assert_equivalent(
        serial_faulted_result, _run(shards=shards, faults=FAULT_PLAN)
    )


def test_faulted_bit_identity_inprocess(serial_faulted_result):
    _assert_equivalent(
        serial_faulted_result,
        _run(shards=2, mode="inprocess", faults=FAULT_PLAN),
    )


@pytest.mark.parametrize("mode", ["inprocess", "process"])
def test_tenant_bit_identity(serial_tenant_result, mode):
    _assert_equivalent(
        serial_tenant_result, _run(shards=2, mode=mode, tenants=True)
    )


def test_faulted_counters_match_serial(serial_faulted_result):
    """The fault layer's own instruments (admission blackholes, NIC drop
    coin flips, responses lost) reproduce exactly: the ship-time
    admission mirror draws the serial decision stream."""
    sharded = _run(shards=4, faults=FAULT_PLAN)
    serial_faults = {
        key: value
        for key, value in serial_faulted_result.metrics.items()
        if key.startswith("faults.")
    }
    sharded_faults = {
        key: value
        for key, value in sharded.metrics.items()
        if key.startswith("faults.")
    }
    assert serial_faults == sharded_faults
    assert serial_faults["faults.requests_blackholed"] >= 0


def test_sharded_overhead_instruments_present():
    """Sharded runs expose the ``shard.*`` overhead accounting."""
    result = _run(shards=2)
    assert result.metrics["shard.windows"] > 0
    assert result.metrics["shard.messages_out"] >= N_REQUESTS
    assert result.metrics["shard.messages_in"] >= N_REQUESTS
    assert result.metrics["shard.barrier_stall_ns"] >= 0
    for key in ("shard.windows", "shard.messages_out"):
        assert isinstance(result.metrics[key], int)
