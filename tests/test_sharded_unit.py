"""Unit tests for the sharded parallel-in-time execution machinery.

The equivalence battery (``test_sharded_equivalence.py``) proves the
end-to-end bit-identity claim; these tests pin the individual contracts
it rests on: the engine's window primitives, the window driver's
construction invariants, snapshot attachment, mirror-rack behavior,
topology validation, and runner spec stamping.
"""

from __future__ import annotations

import pytest

from repro.cluster.topology import RackConfig
from repro.datacenter.sharded import (
    MirrorRack,
    ShardedDatacenter,
    build_sharded_topology,
)
from repro.datacenter.topology import DatacenterConfig
from repro.runner import ShardedRunner
from repro.runner.spec import PointSpec, SweepSpec, ref
from repro.sim.engine import SimulationError, Simulator
from repro.sim.rng import RandomStreams
from repro.sim.sharded import ShardedSimulator, WindowDriver
from repro.telemetry.registry import MetricNamespaceError, MetricRegistry
from repro.workload.request import Request


def _config(**overrides):
    defaults = dict(
        n_racks=4,
        rack=RackConfig(n_servers=2, cores_per_server=2),
    )
    defaults.update(overrides)
    return DatacenterConfig(**defaults)


def _request(req_id: int = 0) -> Request:
    return Request(req_id=req_id, arrival=0.0, service_time=100.0)


# ----------------------------------------------------------------------
# Engine window primitives
# ----------------------------------------------------------------------
class TestRunUntilHorizon:
    def test_bound_is_exclusive(self):
        sim = Simulator()
        fired = []
        for t in (10.0, 20.0, 30.0):
            sim.schedule_at(t, fired.append, t)
        sim.run_until_horizon(20.0)
        assert fired == [10.0]  # the event at exactly 20.0 stays queued
        sim.run_until_horizon(30.0 + 1e-9)
        assert fired == [10.0, 20.0, 30.0]

    def test_clock_never_clamped(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run_until_horizon(500.0)
        assert sim.now == 10.0  # stays at the last executed event

    def test_stop_latches_across_windows(self):
        sim = Simulator()
        sim.schedule_at(10.0, sim.stop)
        sim.schedule_at(20.0, lambda: None)
        sim.run_until_horizon(100.0)
        assert sim.stopped
        assert sim.now == 10.0
        sim.run_until_horizon(200.0)  # latched: executes nothing further
        assert sim.now == 10.0

    def test_composes_with_peek_time(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        event = sim.schedule_at(5.0, lambda: None)
        sim.cancel(event)
        assert sim.peek_time() == 10.0  # cancelled head is reaped
        sim.run_until_horizon(50.0)
        assert sim.peek_time() is None


class TestAdvanceClock:
    def test_advances_without_executing(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10.0, fired.append, 1)
        sim.advance_clock(7.5)
        assert sim.now == 7.5
        assert fired == []

    def test_backward_raises(self):
        sim = Simulator()
        sim.advance_clock(10.0)
        with pytest.raises(SimulationError):
            sim.advance_clock(9.0)


class TestShardedSimulator:
    def test_unbound_is_the_serial_engine(self):
        sim = ShardedSimulator()
        fired = []
        sim.schedule_at(5.0, fired.append, 5.0)
        sim.run(until=10.0)
        assert fired == [5.0]
        assert sim.now == 10.0

    def test_bound_rejects_max_events(self):
        sim = ShardedSimulator()
        streams = RandomStreams(1)
        build_sharded_topology(sim, streams, _config(), 2, mode="inprocess")
        with pytest.raises(SimulationError):
            sim.run(until=10.0, max_events=100)


# ----------------------------------------------------------------------
# Window driver construction
# ----------------------------------------------------------------------
class _FakeCoordinator:
    def __init__(self, window_ns: float):
        self.window_ns = window_ns
        self.metrics = MetricRegistry()
        self.shards = []


def test_window_driver_rejects_zero_lookahead():
    with pytest.raises(ValueError, match="lookahead"):
        WindowDriver(Simulator(), _FakeCoordinator(0.0))


def test_lookahead_is_spine_min_transit():
    sim = ShardedSimulator()
    config = _config(spine_forward_latency_ns=750.0)
    system = build_sharded_topology(
        sim, RandomStreams(1), config, 2, mode="inprocess"
    )
    assert system.window_ns == system.spine.min_transit_ns(0)
    assert system.window_ns == 750.0
    system.shutdown()


# ----------------------------------------------------------------------
# Telemetry snapshot attachment
# ----------------------------------------------------------------------
class TestAttachSnapshot:
    def test_appears_in_snapshot_under_prefix(self):
        registry = MetricRegistry()
        registry.counter("local.count").inc(3)
        registry.attach_snapshot("rack0", {"system.completed": 7})
        snapshot = registry.snapshot()
        assert snapshot["local.count"] == 3
        assert snapshot["rack0.system.completed"] == 7

    def test_absent_from_schema(self):
        registry = MetricRegistry()
        registry.attach_snapshot("rack0", {"system.completed": 7})
        assert all(not name.startswith("rack0.") for name in registry.schema())

    def test_bad_namespace_raises(self):
        registry = MetricRegistry()
        with pytest.raises(MetricNamespaceError):
            registry.attach_snapshot("rack 0", {"x": 1})


# ----------------------------------------------------------------------
# Mirror racks
# ----------------------------------------------------------------------
class TestMirrorRack:
    def test_offer_raises(self):
        # The coordinator ships admitted requests to shards; nothing may
        # enqueue work on the mirror itself.
        with pytest.raises(RuntimeError):
            MirrorRack().offer(_request())

    def test_completion_and_drop_bookkeeping(self):
        mirror = MirrorRack()
        done = _request(1)
        done.finished = 42.0
        mirror.apply_completion(done)
        mirror.apply_drop(_request(2))
        assert [r.req_id for r in mirror.finished_requests] == [1]
        assert mirror.stats.completed == 1
        assert mirror.stats.dropped == 1


# ----------------------------------------------------------------------
# Topology construction validation
# ----------------------------------------------------------------------
class TestBuildValidation:
    def test_shards_out_of_range(self):
        config = _config()
        for bad in (0, -1, config.n_racks + 1):
            with pytest.raises(ValueError, match="shards"):
                build_sharded_topology(
                    ShardedSimulator(), RandomStreams(1), config, bad
                )

    def test_requires_sharded_simulator(self):
        with pytest.raises(TypeError, match="ShardedSimulator"):
            build_sharded_topology(
                Simulator(), RandomStreams(1), _config(), 2
            )

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            build_sharded_topology(
                ShardedSimulator(), RandomStreams(1), _config(), 2,
                mode="threads",
            )

    def test_zero_lookahead_config_rejected(self):
        config = _config(spine_forward_latency_ns=0.0)
        with pytest.raises(ValueError, match="lookahead"):
            build_sharded_topology(
                ShardedSimulator(), RandomStreams(1), config, 2,
                mode="inprocess",
            )

    def test_contiguous_balanced_groups(self):
        sim = ShardedSimulator()
        system = build_sharded_topology(
            sim, RandomStreams(1), _config(n_racks=4), 3, mode="inprocess"
        )
        assert isinstance(system, ShardedDatacenter)
        flattened = [rack for group in system._groups for rack in group]
        assert flattened == [0, 1, 2, 3]
        assert [len(group) for group in system._groups] == [2, 1, 1]
        system.shutdown()


# ----------------------------------------------------------------------
# Runner integration
# ----------------------------------------------------------------------
def _builder(sim, streams):  # pragma: no cover - never executed here
    raise AssertionError("stamping tests never run the spec")


class TestShardStamping:
    def _spec(self, shards: int = 1) -> PointSpec:
        from repro.workload.service import Exponential

        return PointSpec(
            builder=ref(_builder),
            service=Exponential(1000.0),
            rate_rps=1e6,
            n_requests=10,
            shards=shards,
        )

    def test_sharded_runner_stamps_unset_specs(self, monkeypatch):
        import repro.runner.runner as runner_mod

        captured = []
        monkeypatch.setattr(
            runner_mod.SweepRunner, "run",
            lambda self, specs: captured.extend(specs),
        )
        ShardedRunner(shards=4, jobs=1).run(
            [self._spec(), self._spec(shards=2)]
        )
        # Unset specs get the runner's count; explicit counts win.
        assert [spec.shards for spec in captured] == [4, 2]

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            ShardedRunner(shards=0)

    def test_sweep_spec_propagates_shards(self):
        from repro.workload.service import Exponential

        sweep = SweepSpec(
            builder=ref(_builder),
            service=Exponential(1000.0),
            rates_rps=[1e6, 2e6],
            n_requests=10,
            shards=3,
        )
        assert [point.shards for point in sweep.points()] == [3, 3]
