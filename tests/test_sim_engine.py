"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(30.0, order.append, "c")
        sim.schedule(10.0, order.append, "a")
        sim.schedule(20.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self, sim):
        order = []
        for tag in range(5):
            sim.schedule(10.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(42.5, lambda: None)
        sim.run()
        assert sim.now == 42.5

    def test_schedule_at_absolute_time(self, sim):
        hits = []
        sim.schedule_at(100.0, hits.append, 1)
        sim.run()
        assert sim.now == 100.0
        assert hits == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_past_rejected(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_callback_can_schedule_more_events(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(5.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 6.0

    def test_callback_can_schedule_at_current_time(self, sim):
        order = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, order.append, "now"))
        sim.run()
        assert order == ["now"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        hits = []
        event = sim.schedule(10.0, hits.append, 1)
        sim.cancel(event)
        sim.run()
        assert hits == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(10.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run()  # must not raise

    def test_cancel_after_fire_is_noop(self, sim):
        event = sim.schedule(10.0, lambda: None)
        sim.run()
        sim.cancel(event)

    def test_other_events_survive_cancellation(self, sim):
        hits = []
        keep = sim.schedule(10.0, hits.append, "keep")
        drop = sim.schedule(5.0, hits.append, "drop")
        sim.cancel(drop)
        sim.run()
        assert hits == ["keep"]
        assert keep.time == 10.0


class TestRunControl:
    def test_run_until_is_inclusive(self, sim):
        hits = []
        sim.schedule(10.0, hits.append, 1)
        sim.run(until=10.0)
        assert hits == [1]

    def test_run_until_stops_before_later_events(self, sim):
        hits = []
        sim.schedule(10.0, hits.append, "early")
        sim.schedule(20.0, hits.append, "late")
        sim.run(until=15.0)
        assert hits == ["early"]
        assert sim.now == 15.0
        sim.run()
        assert hits == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self, sim):
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_max_events_bounds_execution(self, sim):
        hits = []
        for i in range(10):
            sim.schedule(float(i + 1), hits.append, i)
        sim.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_stop_halts_run(self, sim):
        hits = []
        sim.schedule(1.0, hits.append, "a")
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, hits.append, "b")
        sim.run()
        assert hits == ["a"]
        sim.run()
        assert hits == ["a", "b"]

    def test_run_is_not_reentrant(self, sim):
        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_executes_single_event(self, sim):
        hits = []
        sim.schedule(1.0, hits.append, 1)
        sim.schedule(2.0, hits.append, 2)
        assert sim.step() is True
        assert hits == [1]


class TestIntrospection:
    def test_events_processed_counts(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_pending_reflects_heap(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_args_are_passed(self, sim):
        result = {}
        sim.schedule(1.0, lambda a, b: result.update(a=a, b=b), 7, "x")
        sim.run()
        assert result == {"a": 7, "b": "x"}
