"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(30.0, order.append, "c")
        sim.schedule(10.0, order.append, "a")
        sim.schedule(20.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_fire_fifo(self, sim):
        order = []
        for tag in range(5):
            sim.schedule(10.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self, sim):
        sim.schedule(42.5, lambda: None)
        sim.run()
        assert sim.now == 42.5

    def test_schedule_at_absolute_time(self, sim):
        hits = []
        sim.schedule_at(100.0, hits.append, 1)
        sim.run()
        assert sim.now == 100.0
        assert hits == [1]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_past_rejected(self, sim):
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_callback_can_schedule_more_events(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(5.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 6.0

    def test_callback_can_schedule_at_current_time(self, sim):
        order = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, order.append, "now"))
        sim.run()
        assert order == ["now"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        hits = []
        event = sim.schedule(10.0, hits.append, 1)
        sim.cancel(event)
        sim.run()
        assert hits == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(10.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.run()  # must not raise

    def test_cancel_after_fire_is_noop(self, sim):
        event = sim.schedule(10.0, lambda: None)
        sim.run()
        sim.cancel(event)

    def test_other_events_survive_cancellation(self, sim):
        hits = []
        keep = sim.schedule(10.0, hits.append, "keep")
        drop = sim.schedule(5.0, hits.append, "drop")
        sim.cancel(drop)
        sim.run()
        assert hits == ["keep"]
        assert keep.time == 10.0


class TestRunControl:
    def test_run_until_is_inclusive(self, sim):
        hits = []
        sim.schedule(10.0, hits.append, 1)
        sim.run(until=10.0)
        assert hits == [1]

    def test_run_until_stops_before_later_events(self, sim):
        hits = []
        sim.schedule(10.0, hits.append, "early")
        sim.schedule(20.0, hits.append, "late")
        sim.run(until=15.0)
        assert hits == ["early"]
        assert sim.now == 15.0
        sim.run()
        assert hits == ["early", "late"]

    def test_run_until_advances_clock_when_idle(self, sim):
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_max_events_bounds_execution(self, sim):
        hits = []
        for i in range(10):
            sim.schedule(float(i + 1), hits.append, i)
        sim.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_stop_halts_run(self, sim):
        hits = []
        sim.schedule(1.0, hits.append, "a")
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, hits.append, "b")
        sim.run()
        assert hits == ["a"]
        sim.run()
        assert hits == ["a", "b"]

    def test_run_is_not_reentrant(self, sim):
        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_step_executes_single_event(self, sim):
        hits = []
        sim.schedule(1.0, hits.append, 1)
        sim.schedule(2.0, hits.append, 2)
        assert sim.step() is True
        assert hits == [1]


class TestEdgeCases:
    """Regression territory: cancellation after firing, stop() from
    inside callbacks, FIFO tie-breaking under mutation, and the
    until/max_events clock-advance contract."""

    def test_cancel_fired_event_leaves_future_events_alone(self, sim):
        hits = []
        fired = sim.schedule(1.0, hits.append, "first")
        sim.run()
        sim.cancel(fired)  # harmless no-op on an already-fired event
        sim.schedule(1.0, hits.append, "second")
        sim.run()
        assert hits == ["first", "second"]
        assert sim.events_processed == 2

    def test_cancel_fired_event_does_not_cancel_reused_slot(self, sim):
        # Cancelling a fired event must only flag THAT event object,
        # never a later event that happens to share time/seq patterns.
        first = sim.schedule(5.0, lambda: None)
        sim.run()
        later = sim.schedule(5.0, lambda: None)
        sim.cancel(first)
        assert later.cancelled is False

    def test_stop_inside_callback_skips_same_time_events(self, sim):
        hits = []

        def stopper():
            hits.append("stopper")
            sim.stop()

        sim.schedule(10.0, stopper)
        sim.schedule(10.0, hits.append, "same-time")
        sim.schedule(11.0, hits.append, "later")
        sim.run()
        assert hits == ["stopper"]
        assert sim.now == 10.0
        sim.run()  # a fresh run resumes with the remaining events
        assert hits == ["stopper", "same-time", "later"]

    def test_stop_inside_callback_does_not_clamp_to_until(self, sim):
        # stop() means "the run was cut short": pending work before
        # `until` has not happened, so the clock must not pretend it has.
        sim.schedule(10.0, sim.stop)
        sim.schedule(20.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 10.0

    def test_fifo_ties_survive_interleaved_cancellation(self, sim):
        hits = []
        sim.schedule(10.0, hits.append, "a")
        b = sim.schedule(10.0, hits.append, "b")
        sim.schedule(10.0, hits.append, "c")
        sim.cancel(b)
        sim.run()
        assert hits == ["a", "c"]

    def test_callback_scheduling_now_runs_after_existing_ties(self, sim):
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, order.append, "injected")

        sim.schedule(10.0, first)
        sim.schedule(10.0, order.append, "second")
        sim.run()
        # The injected same-time event got a later sequence number, so
        # it fires after every event scheduled before it.
        assert order == ["first", "second", "injected"]

    def test_max_events_exhaustion_does_not_clamp_to_until(self, sim):
        hits = []
        for i in range(5):
            sim.schedule(float(i + 1), hits.append, i)
        sim.run(until=100.0, max_events=2)
        assert hits == [0, 1]
        assert sim.now == 2.0  # not 100.0: three events never ran

    def test_until_clamps_when_budget_not_exhausted(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run(until=50.0, max_events=10)
        assert sim.now == 50.0

    def test_max_events_takes_precedence_on_simultaneous_drain(self, sim):
        # Budget exhausted by the exact event that drains the heap: the
        # run counts as truncated, so no clamp to `until`.
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=50.0, max_events=2)
        assert sim.now == 2.0

    def test_run_resumes_cleanly_after_max_events(self, sim):
        hits = []
        for i in range(4):
            sim.schedule(float(i + 1), hits.append, i)
        sim.run(max_events=2)
        sim.run(until=100.0)
        assert hits == [0, 1, 2, 3]
        assert sim.now == 100.0

    def test_cancelled_events_do_not_consume_max_events_budget(self, sim):
        hits = []
        doomed = [sim.schedule(1.0, hits.append, f"dead{i}") for i in range(3)]
        for event in doomed:
            sim.cancel(event)
        sim.schedule(2.0, hits.append, "alive")
        sim.run(max_events=1)
        assert hits == ["alive"]


class TestIntrospection:
    def test_events_processed_counts(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_pending_reflects_heap(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_args_are_passed(self, sim):
        result = {}
        sim.schedule(1.0, lambda a, b: result.update(a=a, b=b), 7, "x")
        sim.run()
        assert result == {"a": 7, "b": "x"}


class TestPendingCounters:
    """``pending`` vs ``pending_active`` under lazy cancellation.

    ``cancel`` only flags an event, so cancelled entries linger in the
    heap until popped (or compacted): ``pending`` deliberately counts
    them (heap memory), while ``pending_active`` counts only events that
    will actually fire.
    """

    def test_pending_includes_lazily_cancelled_entries(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        sim.cancel(events[0])
        sim.cancel(events[3])
        # The cancelled entries are still physically in the heap.
        assert sim.pending == 5
        assert sim.pending_active == 3

    def test_pending_active_matches_events_that_fire(self, sim):
        fired = []
        events = [
            sim.schedule(float(i + 1), fired.append, i) for i in range(6)
        ]
        for ev in events[::2]:
            sim.cancel(ev)
        expected = sim.pending_active
        sim.run()
        assert len(fired) == expected == 3
        assert sim.pending == 0
        assert sim.pending_active == 0

    def test_cancel_after_fire_does_not_skew_counters(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(max_events=1)  # fires ev
        sim.cancel(ev)  # no-op: already fired
        assert sim.pending == 1
        assert sim.pending_active == 1

    def test_double_cancel_counts_once(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        assert sim.pending == 2
        assert sim.pending_active == 1

    def test_compaction_reaps_dead_entries(self, sim):
        from repro.sim.engine import _COMPACT_MIN_DEAD

        keep = [sim.schedule(float(i + 1), lambda: None) for i in range(4)]
        doomed = [
            sim.schedule(1000.0 + i, lambda: None)
            for i in range(2 * _COMPACT_MIN_DEAD)
        ]
        for ev in doomed:
            sim.cancel(ev)
        # Compaction kicked in once dead entries dominated: the heap no
        # longer holds every cancelled entry, and the live count is exact.
        assert sim.pending < len(keep) + len(doomed)
        assert sim.pending_active == len(keep)
        sim.run()
        assert sim.events_processed == len(keep)
