"""Unit tests for deterministic named random streams."""

import pytest

from repro.sim.rng import RandomStreams


class TestDeterminism:
    def test_same_seed_same_draws(self):
        a = RandomStreams(7).get("arrivals")
        b = RandomStreams(7).get("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).get("arrivals")
        b = RandomStreams(2).get("arrivals")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        a = [streams.get("a").random() for _ in range(5)]
        b = [streams.get("b").random() for _ in range(5)]
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_draw_order_between_streams_does_not_matter(self):
        s1 = RandomStreams(9)
        s2 = RandomStreams(9)
        # Interleave draws differently; per-stream sequences must match.
        a1 = s1.get("a")
        b1 = s1.get("b")
        seq_a1 = [a1.random(), a1.random()]
        seq_b1 = [b1.random()]
        b2 = s2.get("b")
        a2 = s2.get("a")
        seq_b2 = [b2.random()]
        seq_a2 = [a2.random(), a2.random()]
        assert seq_a1 == seq_a2
        assert seq_b1 == seq_b2


class TestSpawn:
    def test_spawned_children_are_deterministic(self):
        a = RandomStreams(7).spawn("child").get("x")
        b = RandomStreams(7).spawn("child").get("x")
        assert a.random() == b.random()

    def test_spawned_children_differ_from_parent(self):
        parent = RandomStreams(7)
        child = parent.spawn("child")
        assert parent.get("x").random() != child.get("x").random()

    def test_sibling_children_differ(self):
        parent = RandomStreams(7)
        assert (
            parent.spawn("a").get("x").random()
            != parent.spawn("b").get("x").random()
        )


class TestValidation:
    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_zero_seed_allowed(self):
        assert RandomStreams(0).get("x") is not None
