"""Unit tests for periodic timers."""

import pytest

from repro.sim.timer import PeriodicTimer


class TestPeriodicTimer:
    def test_fires_every_period(self, sim):
        times = []
        PeriodicTimer(sim, 10.0, lambda: times.append(sim.now))
        sim.run(until=35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_start_at_overrides_first_firing(self, sim):
        times = []
        PeriodicTimer(sim, 10.0, lambda: times.append(sim.now), start_at=3.0)
        sim.run(until=25.0)
        assert times == [3.0, 13.0, 23.0]

    def test_stop_prevents_future_firings(self, sim):
        times = []
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now))
        sim.schedule(25.0, timer.stop)
        sim.run(until=100.0)
        assert times == [10.0, 20.0]
        assert not timer.active

    def test_stop_from_within_callback(self, sim):
        timer_box = {}

        def fire():
            if len(times) == 2:
                timer_box["t"].stop()

        times = []

        def cb():
            times.append(sim.now)
            fire()

        timer_box["t"] = PeriodicTimer(sim, 5.0, cb)
        sim.run(until=100.0)
        assert times == [5.0, 10.0]

    def test_set_period_takes_effect_after_next_firing(self, sim):
        times = []
        timer = PeriodicTimer(sim, 10.0, lambda: times.append(sim.now))
        sim.schedule(11.0, timer.set_period, 5.0)
        sim.run(until=31.0)
        assert times == [10.0, 20.0, 25.0, 30.0]

    def test_counts_fires(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        sim.run(until=10.5)
        assert timer.fires == 10

    def test_args_forwarded(self, sim):
        hits = []
        PeriodicTimer(sim, 5.0, hits.append, "tick")
        sim.run(until=11.0)
        assert hits == ["tick", "tick"]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        with pytest.raises(ValueError):
            timer.set_period(-5.0)
