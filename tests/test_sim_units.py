"""Unit tests for time/frequency unit helpers."""

import pytest

from repro.sim.units import GHZ, MS, NS, SEC, US, cycles_to_ns, ns_to_cycles


def test_unit_ratios():
    assert US == 1000 * NS
    assert MS == 1000 * US
    assert SEC == 1000 * MS
    assert GHZ == 1.0


def test_cycles_to_ns_at_2ghz():
    # The paper's 70-cycle coherence message at 2 GHz is 35 ns.
    assert cycles_to_ns(70, freq_ghz=2.0) == 35.0


def test_cycles_to_ns_default_frequency():
    assert cycles_to_ns(100) == 50.0


def test_roundtrip():
    assert ns_to_cycles(cycles_to_ns(123, 2.0), 2.0) == pytest.approx(123)


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        cycles_to_ns(10, freq_ghz=0)
    with pytest.raises(ValueError):
        ns_to_cycles(10, freq_ghz=-1)
