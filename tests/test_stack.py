"""Unit tests for the RPC stack processing models."""

import pytest

from repro.stack.profiles import (
    FIG1_REQUEST_BYTES,
    erpc_stack,
    nanorpc_stack,
    tcpip_stack,
)
from repro.stack.rpc_layer import RpcLayerModel
from repro.stack.serialization import (
    FieldKind,
    FlatSerializer,
    MessageField,
    MessageSchema,
    ProtobufLikeSerializer,
    ZeroCopySerializer,
)
from repro.stack.transport import (
    HardwareTerminatedTransport,
    KernelBypassTransport,
    KernelTcpTransport,
)


class TestTransports:
    def test_generation_ordering(self):
        """Each stack generation is at least 10x cheaper than the last."""
        size = FIG1_REQUEST_BYTES
        tcp = KernelTcpTransport().rx_ns(size)
        bypass = KernelBypassTransport().rx_ns(size)
        hw = HardwareTerminatedTransport().rx_ns(size)
        assert tcp > 10 * bypass > 100 * hw

    def test_cost_monotone_in_size(self):
        for transport in (KernelTcpTransport(), KernelBypassTransport(),
                          HardwareTerminatedTransport()):
            sizes = [0, 64, 300, 1460, 4096, 64_000]
            costs = [transport.rx_ns(s) for s in sizes]
            assert costs == sorted(costs)

    def test_segmentation_kicks_in_past_mtu(self):
        tcp = KernelTcpTransport()
        one_packet = tcp.rx_ns(1_000)
        two_packets = tcp.rx_ns(2_000)
        assert two_packets - one_packet > tcp.per_packet_ns * 0.9

    def test_round_trip_is_rx_plus_tx(self):
        t = KernelBypassTransport()
        assert t.round_trip_ns(300, 64) == pytest.approx(
            t.rx_ns(300) + t.tx_ns(64)
        )

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            KernelTcpTransport().rx_ns(-1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            KernelTcpTransport(syscall_ns=-1.0)
        with pytest.raises(ValueError):
            KernelBypassTransport(mtu_bytes=0)


class TestSchemas:
    def test_blob_schema_shape(self):
        schema = MessageSchema.blob("req", 300, header_fields=3)
        assert schema.n_fields == 4
        assert schema.wire_bytes == 3 * 8 + 300

    def test_fixed_field_sizes(self):
        schema = MessageSchema.of(
            "m",
            MessageField("a", FieldKind.INT32),
            MessageField("b", FieldKind.INT64),
            MessageField("c", FieldKind.FLOAT64),
        )
        assert schema.wire_bytes == 4 + 8 + 8

    def test_negative_bytes_field_rejected(self):
        bad = MessageField("p", FieldKind.BYTES, -5)
        with pytest.raises(ValueError):
            bad.wire_bytes()


class TestSerializers:
    SCHEMA = MessageSchema.blob("m", 300)

    def test_protobuf_decode_dearer_than_encode(self):
        ser = ProtobufLikeSerializer()
        assert ser.deserialize_ns(self.SCHEMA) > ser.serialize_ns(self.SCHEMA)

    def test_flat_cheaper_than_protobuf(self):
        assert FlatSerializer().serialize_ns(self.SCHEMA) < (
            ProtobufLikeSerializer().serialize_ns(self.SCHEMA)
        )

    def test_zero_copy_is_size_independent(self):
        ser = ZeroCopySerializer()
        big = MessageSchema.blob("big", 1 << 20)
        assert ser.serialize_ns(self.SCHEMA) == ser.serialize_ns(big)

    def test_flat_decode_is_in_place(self):
        ser = FlatSerializer()
        assert ser.deserialize_ns(self.SCHEMA) < ser.serialize_ns(self.SCHEMA)

    def test_cost_validation(self):
        with pytest.raises(ValueError):
            ProtobufLikeSerializer(per_field_ns=-1.0)
        with pytest.raises(ValueError):
            ZeroCopySerializer(fixed_ns=-1.0)


class TestRpcLayer:
    def test_round_trip_composition(self):
        layer = RpcLayerModel(serializer=FlatSerializer())
        req = MessageSchema.blob("req", 300)
        resp = MessageSchema.blob("resp", 64)
        assert layer.round_trip_ns(req, resp) == pytest.approx(
            layer.request_ns(req) + layer.response_ns(resp)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            RpcLayerModel(serializer=FlatSerializer(), header_parse_ns=-1.0)


class TestProfiles:
    def test_fig1_bands(self):
        """The composed profiles land in Fig. 1's processing bands."""
        assert 10_000 <= tcpip_stack().processing_ns() <= 25_000
        assert 700 <= erpc_stack().processing_ns() <= 1_000
        assert 25 <= nanorpc_stack().processing_ns() <= 60

    def test_breakdown_sums_to_total(self):
        for profile in (tcpip_stack(), erpc_stack(), nanorpc_stack()):
            split = profile.breakdown()
            assert split["transport_ns"] + split["rpc_layer_ns"] == (
                pytest.approx(profile.processing_ns())
            )

    def test_larger_messages_cost_more(self):
        profile = erpc_stack()
        assert profile.processing_ns(4_096, 64) > profile.processing_ns(64, 64)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            tcpip_stack().processing_ns(-1, 64)
