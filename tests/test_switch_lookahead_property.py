"""Property test: ``min_transit_ns`` is a true fabric-latency floor.

The sharded parallel-in-time runtime's entire correctness argument
rests on one switch property: a request entering
:meth:`~repro.cluster.switch.SwitchCore.forward` at time ``t`` is never
delivered before ``t`` plus the switch's computed per-link minimum
delay.  This test drives randomized topologies (ports, bandwidth,
forwarding latency, queue depth, spine link aggregation) through
randomized traffic and fault schedules (port degrades in ``(0, 1]``,
partitions, heals) and checks the floor on **every** delivered message.

Floating-point note: the floor is asserted in the exact op order the
event loop uses -- ``(t + serialization_ns(size)) + forward_latency_ns``
-- which bounds every delivery *exactly* (float addition is monotone in
each argument, queueing only pushes the serializer start later, and a
degraded port only serializes slower).  ``min_transit_ns`` is that same
sum re-associated, equal in real arithmetic; asserting the re-associated
form directly would be wrong by an ulp at large clocks.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.switch import SwitchCore, ToRSwitch
from repro.datacenter.spine import SpineSwitch
from repro.sim.engine import Simulator
from repro.workload.request import Request

#: One randomized scheduled action: (time gap, kind, port selector,
#: payload).  Kinds: "send" (forward a request), "degrade" (bandwidth
#: factor), "heal" (restore factor 1.0), "partition", "unpartition".
_ACTIONS = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False,
                  allow_infinity=False),
        st.sampled_from(["send", "send", "send", "degrade", "heal",
                         "partition", "unpartition"]),
        st.integers(min_value=0, max_value=10_000),  # port, mod n_ports
        st.integers(min_value=1, max_value=9_000),   # size_bytes
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


@st.composite
def _switches(draw):
    sim = Simulator()
    n_ports = draw(st.integers(min_value=1, max_value=6))
    bandwidth = draw(st.floats(min_value=0.5, max_value=800.0,
                               allow_nan=False, allow_infinity=False))
    latency = draw(st.floats(min_value=0.0, max_value=2_000.0,
                             allow_nan=False, allow_infinity=False))
    depth = draw(st.one_of(st.none(), st.integers(min_value=1,
                                                  max_value=4)))
    flavor = draw(st.sampled_from(["core", "tor", "spine"]))
    if flavor == "spine":
        switch = SpineSwitch(
            sim, n_ports, bandwidth_gbps=bandwidth,
            forward_latency_ns=latency, port_queue_depth=depth,
            spine_links=draw(st.integers(min_value=1, max_value=4)),
        )
    else:
        cls = ToRSwitch if flavor == "tor" else SwitchCore
        switch = cls(
            sim, n_ports, bandwidth_gbps=bandwidth,
            forward_latency_ns=latency, port_queue_depth=depth,
        )
    return sim, switch


@settings(max_examples=200, deadline=None)
@given(_switches(), _ACTIONS, st.floats(min_value=0.0, max_value=1e9,
                                        allow_nan=False,
                                        allow_infinity=False))
def test_min_transit_is_a_delivery_floor(switch_case, actions, start_ns):
    sim, switch = switch_case
    sent = 0
    delivered = []

    def send(size: int, port: int) -> None:
        t_send = sim.now
        # The exact-arithmetic floor, evaluated in delivery op order
        # against the *healthy* serialization rate (degrades only slow
        # ports down; set_port_bandwidth_factor rejects factors > 1).
        floor = (t_send + switch.serialization_ns(size)) \
            + switch.forward_latency_ns
        request = Request(req_id=len(delivered) + sent, arrival=t_send,
                          service_time=100.0, size_bytes=size)

        def on_deliver(req: Request, _floor=floor, _t=t_send,
                       _size=size) -> None:
            assert sim.now >= _floor
            # And the claim as documented, up to final-rounding: the
            # re-associated min_transit_ns agrees with the op-order
            # floor in real arithmetic.
            assert sim.now >= _t + switch.min_transit_ns(_size) or \
                math.isclose(sim.now, _t + switch.min_transit_ns(_size),
                             rel_tol=1e-12)
            delivered.append(req.req_id)

        switch.forward(request, port, on_deliver)

    clock = start_ns
    for gap, kind, port_sel, size, factor in actions:
        clock += gap
        port = port_sel % switch.n_ports
        if kind == "send":
            sent += 1
            sim.schedule_at(clock, send, size, port)
        elif kind == "degrade":
            sim.schedule_at(clock, switch.set_port_bandwidth_factor,
                            port, factor)
        elif kind == "heal":
            sim.schedule_at(clock, switch.set_port_bandwidth_factor,
                            port, 1.0)
        elif kind == "partition":
            sim.schedule_at(clock, switch.set_port_partitioned, port, True)
        else:
            sim.schedule_at(clock, switch.set_port_partitioned, port, False)
    sim.run()
    # Every accepted request either delivered (with the floor asserted
    # in its callback) or was lost to a partition/tail-drop.
    assert len(delivered) == switch.forwarded
    assert (len(delivered) + switch.dropped + switch.partition_dropped
            == sent)


@given(st.integers(min_value=0, max_value=9_000),
       st.floats(min_value=0.5, max_value=800.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=2_000.0, allow_nan=False))
def test_min_transit_matches_its_definition(size, bandwidth, latency):
    switch = SwitchCore(Simulator(), 2, bandwidth_gbps=bandwidth,
                        forward_latency_ns=latency)
    assert switch.min_transit_ns(size) == \
        latency + switch.serialization_ns(size)
    # The sharded lookahead case: payload-independent floor.
    assert switch.min_transit_ns(0) == latency


@given(st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
       st.integers(min_value=1, max_value=9_000))
def test_degraded_port_never_beats_healthy_rate(factor, size):
    switch = SwitchCore(Simulator(), 2)
    switch.set_port_bandwidth_factor(0, factor)
    assert switch.serialization_ns(size, port=0) >= \
        switch.serialization_ns(size)
    assert switch.serialization_ns(size, port=1) == \
        switch.serialization_ns(size)
