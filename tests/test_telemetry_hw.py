"""Hardware-layer telemetry accounting, hand-computed on a 2x2 mesh.

Satellite regression for the registry refactor: the NoC and messaging
tiles now account into registry-owned instruments, and their ``stats``
snapshots must agree with both the hand-computed ground truth and the
registry's own snapshot.
"""

from repro.hw.messaging import ACK_BYTES, MIGRATE_HEADER_BYTES, ManagerTileHw
from repro.hw.noc import Noc, NocMessage
from repro.hw.topology import MeshTopology
from repro.telemetry import MetricRegistry
from tests.conftest import make_request


class TestNocAccounting:
    def test_hand_computed_hops_on_2x2_mesh(self, sim):
        mesh = MeshTopology(4)
        # XY routing on a 2x2 mesh: tile 0=(0,0) 1=(1,0) 2=(0,1) 3=(1,1)
        assert mesh.hops(0, 3) == 2
        assert mesh.hops(0, 1) == 1
        assert mesh.hops(1, 2) == 2
        assert mesh.hops(2, 2) == 0

        registry = MetricRegistry()
        noc = Noc(sim, mesh, per_hop_ns=3.0, flit_ns=1.0,
                  registry=registry)
        done = []
        # 16 bytes = 1 flit, 2 hops: 2*3 + 1 = 7 ns.
        noc.send(NocMessage(src=0, dst=3, payload=None, size_bytes=16,
                            vnet=1), done.append)
        # 32 bytes = 2 flits, 1 hop: 1*3 + 2 = 5 ns (different dst, so
        # no ejection-port interaction with the first message).
        noc.send(NocMessage(src=0, dst=1, payload=None, size_bytes=32,
                            vnet=0), done.append)
        sim.run()

        assert sorted(m.delivered_at for m in done) == [5.0, 7.0]
        snap = registry.snapshot()
        assert snap["noc.messages"] == 2
        assert snap["noc.bytes"] == 48
        assert snap["noc.latency_ns_total"] == 12.0
        assert snap["noc.by_vnet"] == {"0": 1, "1": 1}

        stats = noc.stats
        assert stats.messages == snap["noc.messages"]
        assert stats.bytes == snap["noc.bytes"]
        assert stats.total_latency_ns == snap["noc.latency_ns_total"]
        assert stats.mean_latency_ns == 6.0

    def test_endpoint_serialization_charged_to_latency(self, sim):
        registry = MetricRegistry()
        noc = Noc(sim, MeshTopology(4), per_hop_ns=3.0, flit_ns=1.0,
                  registry=registry)
        done = []
        for _ in range(2):  # same dst: second waits out the first's flit
            noc.send(NocMessage(src=0, dst=3, payload=None, size_bytes=16),
                     done.append)
        sim.run()
        assert [m.delivered_at for m in done] == [7.0, 8.0]
        assert registry.snapshot()["noc.latency_ns_total"] == 15.0


class TestMessagingAccounting:
    def test_migrate_roundtrip_counters_match_registry(self, sim):
        registry = MetricRegistry()
        mesh = MeshTopology(4)
        noc = Noc(sim, mesh, registry=registry)
        tiles = [
            ManagerTileHw(sim, noc, tile_id=t, manager_index=i,
                          registry=registry)
            for i, t in enumerate((0, 3))
        ]
        for tile in tiles:
            tile.connect(tiles)

        batch = [make_request(req_id=i) for i in range(3)]
        assert tiles[0].send_migrate(1, batch)
        sim.run()

        snap = registry.snapshot()
        # Sender: one MIGRATE of three descriptors, ACKed.
        assert snap["messaging.m0.migrates_sent"] == 1
        assert snap["messaging.m0.descriptors_sent"] == 3
        assert snap["messaging.m0.migrates_acked"] == 1
        assert snap["messaging.m0.migrates_nacked"] == 0
        # Receiver: accepted all three, sent nothing of its own.
        assert snap["messaging.m1.descriptors_accepted"] == 3
        assert snap["messaging.m1.migrates_sent"] == 0
        # NoC carried exactly MIGRATE + ACK.
        assert snap["noc.messages"] == 2
        expected_bytes = (
            MIGRATE_HEADER_BYTES
            + 3 * tiles[0].constants.mr_entry_bytes
            + ACK_BYTES
        )
        assert snap["noc.bytes"] == expected_bytes

        stats = tiles[0].stats
        assert stats.migrates_sent == snap["messaging.m0.migrates_sent"]
        assert stats.descriptors_sent == snap["messaging.m0.descriptors_sent"]
        assert stats.migrates_acked == snap["messaging.m0.migrates_acked"]
        assert tiles[1].stats.descriptors_accepted == 3

    def test_nack_counted_on_sender(self, sim):
        registry = MetricRegistry()
        noc = Noc(sim, MeshTopology(4), registry=registry)
        tiles = [
            ManagerTileHw(sim, noc, tile_id=t, manager_index=i,
                          mr_capacity=1, registry=registry)
            for i, t in enumerate((0, 3))
        ]
        for tile in tiles:
            tile.connect(tiles)
        batch = [make_request(req_id=i) for i in range(2)]
        assert tiles[0].send_migrate(1, batch)  # 2 > receiver capacity 1
        sim.run()
        snap = registry.snapshot()
        assert snap["messaging.m0.migrates_nacked"] == 1
        assert snap["messaging.m1.descriptors_accepted"] == 0
