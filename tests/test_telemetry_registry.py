"""Unit tests for the typed metric registry (repro.telemetry.registry)."""

import json

import pytest

from repro.schedulers.base import SystemStats
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricNameError,
    MetricNamespaceError,
    MetricRegistry,
    validate_namespace,
)


class TestCounter:
    def test_owned_counter_preserves_int(self):
        reg = MetricRegistry()
        c = reg.counter("sys.ops")
        c.value += 1
        c.inc(2)
        assert c.read() == 3
        assert isinstance(reg.snapshot()["sys.ops"], int)

    def test_float_amounts_become_float(self):
        reg = MetricRegistry()
        c = reg.counter("sys.busy_ns")
        c.inc(1.5)
        assert reg.snapshot()["sys.busy_ns"] == 1.5

    def test_bound_counter_reads_live_value(self):
        state = {"n": 0}
        reg = MetricRegistry()
        c = reg.counter("sys.live", fn=lambda: state["n"])
        state["n"] = 7
        assert c.read() == 7
        with pytest.raises(MetricError):
            c.inc()


class TestGauge:
    def test_owned_gauge_set(self):
        reg = MetricRegistry()
        g = reg.gauge("sys.depth")
        g.set(4)
        assert reg.snapshot()["sys.depth"] == 4

    def test_bound_gauge_rejects_set(self):
        reg = MetricRegistry()
        g = reg.gauge("sys.clock", fn=lambda: 42.0)
        assert g.read() == 42.0
        with pytest.raises(MetricError):
            g.set(1)


class TestHistogram:
    def test_observe_buckets_and_sum(self):
        reg = MetricRegistry()
        h = reg.histogram("sys.lat", bounds=[10.0, 100.0])
        for v in (5.0, 50.0, 500.0):
            h.observe(v)
        snap = reg.snapshot()["sys.lat"]
        assert snap["count"] == 3
        assert snap["sum"] == 555.0
        assert snap["buckets"] == {"le_10": 1, "le_100": 1, "le_inf": 1}

    def test_bounds_must_increase(self):
        reg = MetricRegistry()
        with pytest.raises(MetricError):
            reg.histogram("sys.bad", bounds=[10.0, 10.0])
        with pytest.raises(MetricError):
            reg.histogram("sys.empty", bounds=[])


class TestNaming:
    @pytest.mark.parametrize("bad", [
        "nodots", "Caps.name", "noc.", ".noc", "noc..messages",
        "noc.1bad", "noc.mess ages",
    ])
    def test_bad_names_rejected(self, bad):
        with pytest.raises(MetricNameError):
            MetricRegistry().counter(bad)

    def test_duplicate_rejected_across_kinds(self):
        reg = MetricRegistry()
        reg.counter("noc.messages")
        with pytest.raises(MetricNameError):
            reg.gauge("noc.messages")

    def test_namespace_validation(self):
        assert validate_namespace("messaging.m0") == "messaging.m0"
        with pytest.raises(MetricNamespaceError):
            validate_namespace("Bad")


class TestHierarchy:
    def test_child_snapshot_prefixed(self):
        parent, child = MetricRegistry(), MetricRegistry()
        child.counter("system.offered").inc(5)
        parent.attach_child("srv0", child)
        parent.gauge("cluster.imbalance").set(1.5)
        snap = parent.snapshot()
        assert snap["srv0.system.offered"] == 5
        assert snap["cluster.imbalance"] == 1.5

    def test_schema_is_sorted_and_typed(self):
        parent, child = MetricRegistry(), MetricRegistry()
        child.histogram("system.latency_ns")
        parent.counter("noc.messages")
        parent.attach_child("srv0", child)
        assert parent.schema() == [
            {"name": "noc.messages", "type": "counter"},
            {"name": "srv0.system.latency_ns", "type": "histogram"},
        ]

    def test_self_and_double_attach_rejected(self):
        parent, child = MetricRegistry(), MetricRegistry()
        with pytest.raises(MetricError):
            parent.attach_child("x", parent)
        parent.attach_child("srv0", child)
        with pytest.raises(MetricError):
            parent.attach_child("srv1", child)

    def test_to_json_is_strict(self):
        reg = MetricRegistry()
        reg.gauge("sys.nan", fn=lambda: float("nan"))
        reg.gauge("sys.inf", fn=lambda: float("inf"))
        doc = json.loads(reg.to_json())
        assert doc["sys.nan"] is None
        assert doc["sys.inf"] == "inf"


class TestNamespaceCollision:
    """Satellite regression: dotted writes can no longer silently collide."""

    def test_cross_namespace_key_collision_raises(self):
        stats = SystemStats()
        stats.scoped("a").put("cluster.x", 1.0)
        with pytest.raises(MetricNamespaceError):
            stats.scoped("a.cluster").put("x", 2.0)

    def test_same_namespace_rewrites_freely(self):
        stats = SystemStats()
        scope = stats.scoped("a")
        scope.put("x", 1.0)
        scope.put("x", 2.0)
        assert stats.extra["a.x"] == 2.0


class TestFilteredSnapshot:
    """snapshot(prefix): the cheap namespaced read the control loop
    polls every epoch."""

    def _hierarchy(self):
        root = MetricRegistry()
        root.counter("faults.dropped").inc(3)
        root.counter("faults.retry.attempts").inc(7)
        root.counter("system.completed").inc(11)
        child = MetricRegistry()
        child.counter("cluster.decisions").inc(5)
        child.counter("queue.len").inc(2)
        root.attach_child("rack0", child)
        root.attach_snapshot("shard1", {"cluster.decisions": 9, "other": 1})
        return root

    def test_prefix_selects_own_namespace(self):
        root = self._hierarchy()
        assert root.snapshot("faults") == {
            "faults.dropped": 3,
            "faults.retry.attempts": 7,
        }

    def test_nested_prefix(self):
        root = self._hierarchy()
        assert root.snapshot("faults.retry") == {"faults.retry.attempts": 7}

    def test_exact_name_match(self):
        root = self._hierarchy()
        assert root.snapshot("faults.dropped") == {"faults.dropped": 3}

    def test_prefix_descends_into_children(self):
        root = self._hierarchy()
        assert root.snapshot("rack0.cluster") == {
            "rack0.cluster.decisions": 5,
        }

    def test_child_mount_point_selects_whole_child(self):
        root = self._hierarchy()
        assert root.snapshot("rack0") == {
            "rack0.cluster.decisions": 5,
            "rack0.queue.len": 2,
        }

    def test_prefix_filters_attached_snapshots(self):
        root = self._hierarchy()
        assert root.snapshot("shard1.cluster") == {
            "shard1.cluster.decisions": 9,
        }

    def test_disjoint_prefix_is_empty(self):
        root = self._hierarchy()
        assert root.snapshot("nothing") == {}

    def test_invalid_prefix_rejected(self):
        with pytest.raises(MetricNamespaceError):
            self._hierarchy().snapshot("bad prefix!")

    def test_filtered_equals_filtering_the_full_snapshot(self):
        root = self._hierarchy()
        full = root.snapshot()
        for prefix in ("faults", "faults.retry", "system", "rack0",
                       "rack0.cluster", "shard1"):
            expected = {
                name: value for name, value in full.items()
                if name == prefix or name.startswith(prefix + ".")
            }
            assert root.snapshot(prefix) == expected

    def test_unfiltered_snapshot_unchanged(self):
        root = self._hierarchy()
        full = root.snapshot()
        assert full["system.completed"] == 11
        assert full["rack0.queue.len"] == 2
        assert full["shard1.other"] == 1
        assert len(full) == 7
