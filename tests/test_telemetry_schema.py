"""Metrics-schema regression: the instrument set is a public surface.

The pinned snapshot in ``tests/data/metrics_schema.json`` is the schema
of the golden 32-core Altocumulus system (the same shape the determinism
goldens use).  Renaming, retyping, or dropping an instrument breaks
downstream consumers of ``--metrics-out`` snapshots, so it must show up
here as an explicit diff -- regenerate the file deliberately::

    PYTHONPATH=src python -c "
    import json
    from repro.api import build_system
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    s = build_system('altocumulus', Simulator(), RandomStreams(7), 32)
    print(json.dumps(s.metrics.schema(), indent=2))
    " > tests/data/metrics_schema.json
"""

import json
from pathlib import Path

from repro.api import build_system
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams

PINNED = Path(__file__).parent / "data" / "metrics_schema.json"


def test_altocumulus_schema_matches_pinned_snapshot():
    system = build_system("altocumulus", Simulator(), RandomStreams(7), 32)
    assert system.metrics.schema() == json.loads(PINNED.read_text())


def test_snapshot_covers_every_schema_entry():
    system = build_system("altocumulus", Simulator(), RandomStreams(7), 32)
    snapshot = system.metrics.snapshot()
    for entry in system.metrics.schema():
        assert entry["name"] in snapshot
