"""Unit and end-to-end tests for the request trace sink."""

import json
import math

import pytest

from repro.api import quick_run
from repro.telemetry import NULL_SINK, TraceSink, capture, trace_sink


class TestRing:
    def test_capacity_bounds_and_overwrite(self):
        sink = TraceSink(capacity=4)
        for i in range(6):
            sink.mark(i, "arrival", float(i))
        assert len(sink) == 4
        assert sink.dropped_events == 2
        # Oldest two marks were overwritten.
        assert sorted(sink.marks_by_request()) == [2, 3, 4, 5]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TraceSink(capacity=0)
        with pytest.raises(ValueError):
            TraceSink(sample_every=0)

    def test_sampling(self):
        sink = TraceSink(sample_every=3)
        assert sink.sampled(0) and sink.sampled(3)
        assert not sink.sampled(1) and not sink.sampled(2)


class TestSpans:
    def test_request_spans_telescope(self):
        sink = TraceSink()
        sink.mark(7, "arrival", 0.0)
        sink.mark(7, "dispatch", 30.0)
        sink.mark(7, "service", 45.0)
        sink.mark(7, "completed", 145.0)
        spans = sink.request_spans(7)
        assert spans == [
            ("arrival", 0.0, 30.0),
            ("dispatch", 30.0, 45.0),
            ("service", 45.0, 145.0),
        ]
        assert sum(t1 - t0 for _, t0, t1 in spans) == 145.0

    def test_infrastructure_spans(self):
        sink = TraceSink()
        sink.span("noc", 3, "vnet1", 10.0, 17.0)
        assert sink.infrastructure_spans() == [("noc", 3, "vnet1", 10.0, 17.0)]

    def test_chrome_events_shape(self):
        sink = TraceSink()
        sink.mark(0, "arrival", 0.0)
        sink.mark(0, "completed", 1000.0)
        sink.span("tor", 1, "tx", 0.0, 50.0)
        events = sink.chrome_events()
        slices = [e for e in events if e["ph"] == "X" and e["cat"] == "request"]
        assert slices == [{
            "ph": "X", "pid": 1, "tid": 0, "name": "arrival",
            "cat": "request", "ts": 0.0, "dur": 1.0, "args": {"req_id": 0},
        }]
        terminals = [e for e in events if e["ph"] == "i"]
        assert terminals[0]["name"] == "completed"
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"requests", "tor"}

    def test_export_chrome_loads_as_json(self, tmp_path):
        sink = TraceSink(sample_every=2)
        sink.mark(0, "arrival", 0.0)
        path = tmp_path / "trace.json"
        sink.export_chrome(str(path))
        doc = json.loads(path.read_text())
        assert doc["metadata"]["sample_every"] == 2
        assert isinstance(doc["traceEvents"], list)


class TestCaptureContext:
    def test_default_sink_is_null(self):
        assert trace_sink() is NULL_SINK
        assert not NULL_SINK.enabled
        assert not NULL_SINK.sampled(0)

    def test_capture_swaps_and_restores(self):
        sink = TraceSink()
        with capture(trace=sink):
            assert trace_sink() is sink
        assert trace_sink() is NULL_SINK

    def test_collect_metrics_gathers_runs(self):
        with capture(collect_metrics=True) as cap:
            quick_run("rss", n_cores=2, rate_rps=1e5, n_requests=50, seed=3)
        assert len(cap.runs) == 1
        assert cap.runs[0]["system"] == "rss"
        assert cap.runs[0]["metrics"]["system.offered"] == 50


class TestEndToEnd:
    """Acceptance: per-request spans sum to the end-to-end latency."""

    @pytest.mark.parametrize("system", ["altocumulus", "rss", "rack"])
    def test_span_sum_equals_latency(self, system):
        sink = TraceSink()
        with capture(trace=sink):
            result = quick_run(system, n_cores=16, rate_rps=2e6,
                               n_requests=400, seed=5)
        checked = 0
        for req in result.requests:
            spans = sink.request_spans(req.req_id)
            if not spans:
                continue
            total = sum(t1 - t0 for _, t0, t1 in spans)
            assert math.isclose(total, req.finished - req.arrival,
                                rel_tol=0.0, abs_tol=1e-6)
            assert spans[0][1] == req.arrival
            checked += 1
        assert checked >= 100

    def test_lifecycle_phase_order(self):
        sink = TraceSink()
        with capture(trace=sink):
            result = quick_run("altocumulus", n_cores=16, rate_rps=1e6,
                               n_requests=100, seed=5)
        req = result.requests[0]
        phases = [phase for phase, _ in
                  sink.marks_by_request()[req.req_id]]
        assert phases[0] == "nic_delivery"
        assert phases[-1] == "completed"
        assert "service" in phases and "dispatch" in phases
