"""Tests for the benchmark-regression gate script (tools/compare_bench.py)."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).parent.parent
SCRIPT = REPO / "tools" / "compare_bench.py"


def _bench_json(path, mins):
    path.write_text(json.dumps({
        "benchmarks": [
            {"name": name, "stats": {"min": value}}
            for name, value in mins.items()
        ]
    }))
    return str(path)


def _run(*args):
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True, text=True,
    )


class TestGate:
    def test_within_threshold_passes(self, tmp_path):
        base = _bench_json(tmp_path / "base.json", {"bench_a": 1.0})
        cand = _bench_json(tmp_path / "cand.json", {"bench_a": 1.019})
        proc = _run(base, cand, "--threshold", "0.02")
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout

    def test_regression_fails(self, tmp_path):
        base = _bench_json(tmp_path / "base.json", {"bench_a": 1.0})
        cand = _bench_json(tmp_path / "cand.json", {"bench_a": 1.05})
        proc = _run(base, cand, "--threshold", "0.02")
        assert proc.returncode == 1
        assert "regressed" in proc.stderr

    def test_speedup_passes(self, tmp_path):
        base = _bench_json(tmp_path / "base.json", {"bench_a": 1.0})
        cand = _bench_json(tmp_path / "cand.json", {"bench_a": 0.5})
        assert _run(base, cand).returncode == 0

    def test_requested_benchmark_missing_is_an_error(self, tmp_path):
        base = _bench_json(tmp_path / "base.json", {"bench_a": 1.0})
        cand = _bench_json(tmp_path / "cand.json", {"bench_a": 1.0})
        proc = _run(base, cand, "--benchmarks", "bench_a,bench_missing")
        assert proc.returncode == 2
        assert "bench_missing" in proc.stderr

    def test_disjoint_files_are_an_error(self, tmp_path):
        base = _bench_json(tmp_path / "base.json", {"bench_a": 1.0})
        cand = _bench_json(tmp_path / "cand.json", {"bench_b": 1.0})
        proc = _run(base, cand)
        assert proc.returncode == 2
        # The message must be clear and unquoted: say nothing was
        # gated and name what each side actually contains.
        assert "no benchmarks in common" in proc.stderr
        assert "nothing was gated" in proc.stderr
        assert "bench_a" in proc.stderr and "bench_b" in proc.stderr
        assert "'no benchmarks" not in proc.stderr

    def test_empty_candidate_is_an_error(self, tmp_path):
        base = _bench_json(tmp_path / "base.json", {"bench_a": 1.0})
        cand = _bench_json(tmp_path / "cand.json", {})
        proc = _run(base, cand)
        assert proc.returncode == 2
        assert "candidate has: <none>" in proc.stderr

    def test_gates_only_named_benchmarks(self, tmp_path):
        base = _bench_json(tmp_path / "base.json",
                           {"bench_a": 1.0, "bench_b": 1.0})
        cand = _bench_json(tmp_path / "cand.json",
                           {"bench_a": 1.0, "bench_b": 9.0})
        proc = _run(base, cand, "--benchmarks", "bench_a")
        assert proc.returncode == 0, proc.stderr
