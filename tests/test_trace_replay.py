"""Record-and-replay integration: a trace captured from one run drives a
bit-identical second run (the foundation of the Fig. 12 replay study)."""

from repro.api import run_workload
from repro.schedulers.jbsq import ideal_cfcfs
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workload.arrivals import PoissonArrivals, TraceArrivals
from repro.workload.service import Exponential, TraceService
from repro.workload.traces import build_trace, load_trace, save_trace


def _record(seed=4, n=500):
    """Run once with stochastic arrivals/service and capture the trace."""
    sim, streams = Simulator(), RandomStreams(seed)
    system = ideal_cfcfs(sim, streams, 4)
    result = run_workload(
        system, sim, streams, PoissonArrivals(2e6), Exponential(1_000.0),
        n_requests=n, warmup_fraction=0.0,
    )
    reqs = sorted(result.requests, key=lambda r: r.req_id)
    gaps = [reqs[0].arrival] + [
        b.arrival - a.arrival for a, b in zip(reqs, reqs[1:])
    ]
    trace = build_trace(
        gaps,
        [r.service_time for r in reqs],
        size_bytes=[r.size_bytes for r in reqs],
        connection=[r.connection for r in reqs],
    )
    return trace, [r.latency for r in reqs]


def _replay(trace, n):
    sim, streams = Simulator(), RandomStreams(999)  # different seed: unused
    system = ideal_cfcfs(sim, streams, 4)
    result = run_workload(
        system, sim, streams,
        TraceArrivals(trace.gaps_ns),
        TraceService(trace.service_ns),
        n_requests=n, warmup_fraction=0.0,
    )
    return [r.latency for r in
            sorted(result.requests, key=lambda r: r.req_id)]


def test_replay_reproduces_latencies_exactly():
    trace, original = _record()
    replayed = _replay(trace, len(original))
    assert replayed == original


def test_replay_survives_persistence(tmp_path):
    trace, original = _record(n=200)
    path = str(tmp_path / "workload.npz")
    save_trace(path, trace)
    replayed = _replay(load_trace(path), len(original))
    assert replayed == original
