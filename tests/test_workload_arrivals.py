"""Unit and statistical tests for arrival processes."""

import numpy as np
import pytest

from repro.workload.arrivals import (
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)


def measured_rate_rps(process, n=60_000, seed=0):
    rng = np.random.default_rng(seed)
    gaps = [process.next_gap(rng) for _ in range(n)]
    return n / sum(gaps) * 1e9


class TestPoisson:
    def test_mean_rate_property(self):
        assert PoissonArrivals(2e6).mean_rate == pytest.approx(2e6 / 1e9)

    def test_measured_rate_matches_nominal(self):
        assert measured_rate_rps(PoissonArrivals(5e6)) == pytest.approx(
            5e6, rel=0.03
        )

    def test_gaps_are_memoryless_cv(self):
        rng = np.random.default_rng(1)
        p = PoissonArrivals(1e6)
        gaps = np.array([p.next_gap(rng) for _ in range(30_000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 == pytest.approx(1.0, abs=0.1)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestDeterministic:
    def test_constant_gaps(self):
        p = DeterministicArrivals(1e6)
        rng = np.random.default_rng(0)
        assert p.next_gap(rng) == p.next_gap(rng) == 1000.0


class TestMMPP:
    def test_long_run_rate_matches_nominal(self):
        p = MMPPArrivals(100e6, burst_factor=3.0, calm_fraction=0.75,
                         mean_dwell_ns=10_000.0, batch_mean=4.0)
        # Short dwells -> many state cycles -> tight statistics.
        assert measured_rate_rps(p, n=200_000) == pytest.approx(100e6, rel=0.05)

    def test_burstier_than_poisson(self):
        rng = np.random.default_rng(2)
        p = MMPPArrivals(10e6, burst_factor=4.0, calm_fraction=0.8,
                         mean_dwell_ns=20_000.0, batch_mean=4.0)
        gaps = np.array([p.next_gap(rng) for _ in range(50_000)])
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5  # markedly over-dispersed vs Poisson (cv2 = 1)

    def test_batches_produce_tiny_gaps(self):
        rng = np.random.default_rng(3)
        p = MMPPArrivals(10e6, burst_factor=4.0, calm_fraction=0.8,
                         mean_dwell_ns=20_000.0, batch_mean=5.0)
        gaps = [p.next_gap(rng) for _ in range(20_000)]
        assert any(g == 0.0 for g in gaps)  # back-to-back batch trains

    def test_infeasible_parameters_rejected(self):
        # Burst traffic alone would exceed the mean rate.
        with pytest.raises(ValueError):
            MMPPArrivals(1e6, burst_factor=10.0, calm_fraction=0.5)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MMPPArrivals(0.0)
        with pytest.raises(ValueError):
            MMPPArrivals(1e6, burst_factor=0.5)
        with pytest.raises(ValueError):
            MMPPArrivals(1e6, calm_fraction=1.0)
        with pytest.raises(ValueError):
            MMPPArrivals(1e6, batch_mean=0.5)


class TestTraceArrivals:
    def test_replays_and_cycles(self):
        p = TraceArrivals([10.0, 20.0])
        rng = np.random.default_rng(0)
        assert [p.next_gap(rng) for _ in range(4)] == [10.0, 20.0, 10.0, 20.0]

    def test_mean_rate(self):
        p = TraceArrivals([10.0, 30.0])
        assert p.mean_rate == pytest.approx(2 / 40.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals([])
        with pytest.raises(ValueError):
            TraceArrivals([1.0, -1.0])
        with pytest.raises(ValueError):
            TraceArrivals([0.0, 0.0])
