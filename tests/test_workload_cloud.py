"""Tests for the synthetic cloud-traffic generator."""

import numpy as np
import pytest

from repro.workload.cloud import RateSeriesArrivals, synthesize_rate_series


class TestSynthesizer:
    def test_series_shape(self):
        segments = synthesize_rate_series(1e6, 100, 1_000.0, seed=1)
        assert len(segments) == 100
        assert all(d == 1_000.0 for d, _ in segments)
        assert all(r > 0 for _, r in segments)

    def test_mean_rate_near_target(self):
        segments = synthesize_rate_series(1e6, 5_000, 1_000.0,
                                          volatility=0.25, seed=2)
        rates = np.array([r for _, r in segments])
        assert rates.mean() == pytest.approx(1e6, rel=0.1)

    def test_autocorrelation_positive(self):
        segments = synthesize_rate_series(1e6, 5_000, 1_000.0,
                                          correlation=0.95, seed=3)
        log_rates = np.log([r for _, r in segments])
        x, y = log_rates[:-1], log_rates[1:]
        corr = np.corrcoef(x, y)[0, 1]
        assert corr > 0.8  # the wander is genuinely persistent

    def test_zero_volatility_is_constant(self):
        segments = synthesize_rate_series(1e6, 50, 1_000.0, volatility=0.0)
        rates = {round(r) for _, r in segments}
        assert len(rates) == 1

    def test_deterministic_per_seed(self):
        a = synthesize_rate_series(1e6, 20, 1_000.0, seed=9)
        b = synthesize_rate_series(1e6, 20, 1_000.0, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_rate_series(0.0, 10, 1_000.0)
        with pytest.raises(ValueError):
            synthesize_rate_series(1e6, 0, 1_000.0)
        with pytest.raises(ValueError):
            synthesize_rate_series(1e6, 10, 1_000.0, correlation=1.0)


class TestRateSeriesArrivals:
    def test_follows_the_schedule(self):
        """Fast and slow segments produce proportionally many arrivals."""
        process = RateSeriesArrivals(
            [(1e6, 10e6), (1e6, 1e6)]  # 1 ms at 10 MRPS, 1 ms at 1 MRPS
        )
        rng = np.random.default_rng(0)
        t = 0.0
        fast, slow = 0, 0
        for _ in range(110_000):
            t += process.next_gap(rng)
            if t % 2e6 < 1e6:
                fast += 1
            else:
                slow += 1
        # Partial trailing windows bias the ratio a little; the order of
        # magnitude must be right.
        assert fast / max(1, slow) == pytest.approx(10.0, rel=0.35)

    def test_mean_rate_weighted_by_duration(self):
        process = RateSeriesArrivals([(3e6, 1e6), (1e6, 5e6)])
        # (3ms*1M + 1ms*5M) / 4ms = 2 MRPS.
        assert process.mean_rate == pytest.approx(2e6 / 1e9)

    def test_measured_rate_matches_schedule(self):
        """The process realizes its *schedule's* mean (the schedule
        itself wanders around the nominal target; see synthesizer
        tests for that property)."""
        segments = synthesize_rate_series(2e6, 50, 100_000.0, seed=5)
        process = RateSeriesArrivals(segments)
        rng = np.random.default_rng(1)
        n = 40_000
        total = sum(process.next_gap(rng) for _ in range(n))
        assert n / total == pytest.approx(process.mean_rate, rel=0.05)

    def test_schedule_cycles(self):
        process = RateSeriesArrivals([(100.0, 1e9)])
        rng = np.random.default_rng(0)
        gaps = [process.next_gap(rng) for _ in range(1_000)]
        assert all(g >= 0 for g in gaps)

    def test_drives_a_simulation(self):
        from repro.api import run_workload
        from repro.schedulers.jbsq import ideal_cfcfs
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams
        from repro.workload.service import Fixed

        sim, streams = Simulator(), RandomStreams(3)
        system = ideal_cfcfs(sim, streams, 8)
        segments = synthesize_rate_series(4e6, 200, 10_000.0, seed=7)
        result = run_workload(
            system, sim, streams, RateSeriesArrivals(segments),
            Fixed(1_000.0), n_requests=3_000, warmup_fraction=0.0,
        )
        assert len(result.requests) == 3_000

    def test_validation(self):
        with pytest.raises(ValueError):
            RateSeriesArrivals([])
        with pytest.raises(ValueError):
            RateSeriesArrivals([(0.0, 1e6)])
        with pytest.raises(ValueError):
            RateSeriesArrivals([(1e6, 0.0)])
