"""Unit tests for connection pools and RSS hashing."""

import numpy as np
import pytest

from repro.workload.connections import ConnectionPool


class TestSampling:
    def test_uniform_pool_covers_connections(self):
        pool = ConnectionPool.uniform(8)
        rng = np.random.default_rng(0)
        seen = {pool.sample(rng) for _ in range(500)}
        assert seen == set(range(8))

    def test_skewed_pool_prefers_low_ranks(self):
        pool = ConnectionPool.skewed(64, zipf_s=1.2)
        rng = np.random.default_rng(0)
        samples = [pool.sample(rng) for _ in range(5000)]
        head = sum(1 for s in samples if s < 8)
        assert head / len(samples) > 0.5  # hot head dominates

    def test_popularity_sums_to_one(self):
        for pool in (ConnectionPool.uniform(10), ConnectionPool.skewed(10)):
            assert sum(pool.popularity()) == pytest.approx(1.0)

    def test_popularity_is_descending_when_skewed(self):
        pop = ConnectionPool.skewed(16, zipf_s=1.0).popularity()
        assert all(a >= b for a, b in zip(pop, pop[1:]))


class TestHashing:
    def test_hash_is_stable(self):
        pool = ConnectionPool(16)
        assert pool.hash_to_queue(5, 4) == pool.hash_to_queue(5, 4)

    def test_hash_within_range(self):
        pool = ConnectionPool(1000)
        for conn in range(200):
            assert 0 <= pool.hash_to_queue(conn, 7) < 7

    def test_hash_spreads_connections(self):
        pool = ConnectionPool(4096)
        queues = [pool.hash_to_queue(c, 16) for c in range(4096)]
        counts = np.bincount(queues, minlength=16)
        # No queue wildly over/under-loaded for dense connection ids.
        assert counts.min() > 4096 / 16 * 0.5
        assert counts.max() < 4096 / 16 * 1.5

    def test_invalid_queue_count_rejected(self):
        with pytest.raises(ValueError):
            ConnectionPool(4).hash_to_queue(0, 0)


class TestValidation:
    def test_zero_connections_rejected(self):
        with pytest.raises(ValueError):
            ConnectionPool(0)

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            ConnectionPool(4, zipf_s=-1.0)
