"""Unit tests for the open-loop load generator."""

import pytest

from repro.workload.arrivals import DeterministicArrivals
from repro.workload.generator import LoadGenerator
from repro.workload.request import RequestKind
from repro.workload.service import Fixed


def make_generator(sim, streams, sink, n=10, rate_rps=1e6, **kwargs):
    return LoadGenerator(
        sim,
        streams,
        DeterministicArrivals(rate_rps),
        Fixed(100.0),
        sink=sink,
        n_requests=n,
        **kwargs,
    )


class TestEmission:
    def test_emits_exactly_n_requests(self, sim, streams):
        seen = []
        gen = make_generator(sim, streams, seen.append, n=7)
        gen.start()
        sim.run()
        assert len(seen) == 7
        assert gen.done

    def test_request_ids_are_sequential(self, sim, streams):
        seen = []
        gen = make_generator(sim, streams, seen.append, n=5)
        gen.start()
        sim.run()
        assert [r.req_id for r in seen] == [0, 1, 2, 3, 4]

    def test_arrival_times_match_gaps(self, sim, streams):
        seen = []
        gen = make_generator(sim, streams, seen.append, n=3, rate_rps=1e6)
        gen.start()
        sim.run()
        assert [r.arrival for r in seen] == [1000.0, 2000.0, 3000.0]

    def test_open_loop_ignores_sink_behaviour(self, sim, streams):
        # A sink that does nothing (requests never complete) must not
        # stall the generator.
        gen = make_generator(sim, streams, lambda r: None, n=50)
        gen.start()
        sim.run()
        assert gen.emitted == 50


class TestHooks:
    def test_request_factory_decorates(self, sim, streams):
        def factory(request):
            request.kind = RequestKind.GET

        seen = []
        gen = make_generator(sim, streams, seen.append, n=3,
                             request_factory=factory)
        gen.start()
        sim.run()
        assert all(r.kind is RequestKind.GET for r in seen)

    def test_warmup_fraction_excludes_prefix(self, sim, streams):
        gen = make_generator(sim, streams, lambda r: None, n=10,
                             warmup_fraction=0.3)
        gen.start()
        sim.run()
        for r in gen.requests:
            r.finished = r.arrival + 1.0  # mark all complete
        measured = gen.measured_requests()
        assert len(measured) == 7
        assert measured[0].req_id == 3

    def test_measured_excludes_incomplete_and_dropped(self, sim, streams):
        gen = make_generator(sim, streams, lambda r: None, n=4)
        gen.start()
        sim.run()
        gen.requests[0].finished = gen.requests[0].arrival + 1
        gen.requests[1].dropped = True
        measured = gen.measured_requests()
        assert [r.req_id for r in measured] == [0]


class TestValidation:
    def test_zero_requests_rejected(self, sim, streams):
        with pytest.raises(ValueError):
            make_generator(sim, streams, lambda r: None, n=0)

    def test_bad_warmup_rejected(self, sim, streams):
        with pytest.raises(ValueError):
            make_generator(sim, streams, lambda r: None, n=5,
                           warmup_fraction=1.0)
