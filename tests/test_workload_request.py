"""Unit tests for the request record."""

import pytest

from repro.workload.request import Request, RequestKind
from tests.conftest import make_request


class TestLifecycle:
    def test_latency_after_completion(self):
        r = make_request(arrival=100.0)
        r.finished = 1100.0
        assert r.latency == 1000.0

    def test_latency_before_completion_raises(self):
        r = make_request()
        with pytest.raises(ValueError):
            _ = r.latency

    def test_queueing_delay(self):
        r = make_request(arrival=100.0)
        r.started = 400.0
        assert r.queueing_delay == 300.0

    def test_queueing_delay_before_start_raises(self):
        with pytest.raises(ValueError):
            _ = make_request().queueing_delay

    def test_remaining_initialised_to_service_time(self):
        r = make_request(service_time=750.0)
        assert r.remaining == 750.0

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            make_request(service_time=-1.0)


class TestSloChecks:
    def test_violates_when_over_target(self):
        r = make_request(arrival=0.0)
        r.finished = 11_000.0
        assert r.violates(10_000.0)
        assert not r.violates(12_000.0)

    def test_incomplete_request_never_violates(self):
        assert not make_request().violates(1.0)

    def test_boundary_is_not_a_violation(self):
        r = make_request(arrival=0.0)
        r.finished = 10_000.0
        assert not r.violates(10_000.0)


class TestKinds:
    def test_default_kind_is_generic(self):
        assert make_request().kind is RequestKind.GENERIC

    def test_kvs_kinds_exist(self):
        assert {k.value for k in RequestKind} == {
            "generic", "get", "set", "scan", "delete",
        }

    def test_full_construction(self):
        r = Request(
            req_id=5,
            arrival=1.0,
            service_time=2.0,
            size_bytes=64,
            connection=9,
            kind=RequestKind.GET,
            key=b"k",
        )
        assert r.size_bytes == 64
        assert r.key == b"k"
        assert not r.completed
