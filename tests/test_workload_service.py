"""Unit and property tests for service-time distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.service import (
    Bimodal,
    Exponential,
    Fixed,
    Lognormal,
    TraceService,
    Uniform,
)

RNG = np.random.default_rng(42)


class TestFixed:
    def test_always_returns_value(self):
        dist = Fixed(850.0)
        assert all(dist.sample(RNG) == 850.0 for _ in range(10))

    def test_mean_and_cv(self):
        dist = Fixed(850.0)
        assert dist.mean == 850.0
        assert dist.squared_cv == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Fixed(-1.0)


class TestUniform:
    def test_samples_within_bounds(self):
        dist = Uniform(500.0, 1500.0)
        for _ in range(200):
            assert 500.0 <= dist.sample(RNG) <= 1500.0

    def test_mean(self):
        assert Uniform(500.0, 1500.0).mean == 1000.0

    def test_analytic_cv(self):
        dist = Uniform(500.0, 1500.0)
        # var = (b-a)^2/12 = 1e6/12; mean^2 = 1e6
        assert dist.squared_cv == pytest.approx(1.0 / 12.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Uniform(100.0, 50.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 50.0)


class TestBimodal:
    def test_fig10_configuration_mean(self):
        dist = Bimodal(500.0, 500_000.0, 0.005)
        assert dist.mean == pytest.approx(0.995 * 500 + 0.005 * 500_000)

    def test_samples_are_one_of_two_modes(self):
        dist = Bimodal(500.0, 5_000.0, 0.1)
        values = {dist.sample(RNG) for _ in range(500)}
        assert values <= {500.0, 5_000.0}
        assert values == {500.0, 5_000.0}  # both modes appear

    def test_long_fraction_statistics(self):
        dist = Bimodal(1.0, 2.0, 0.3)
        rng = np.random.default_rng(1)
        longs = sum(dist.sample(rng) == 2.0 for _ in range(20_000))
        assert longs / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_high_dispersion_cv(self):
        dist = Bimodal(500.0, 500_000.0, 0.005)
        assert dist.squared_cv > 100  # extremely dispersive, as the paper uses

    def test_extreme_fractions(self):
        assert Bimodal(1.0, 2.0, 0.0).mean == 1.0
        assert Bimodal(1.0, 2.0, 1.0).mean == 2.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            Bimodal(1.0, 2.0, 1.5)


class TestExponential:
    def test_mean_statistics(self):
        dist = Exponential(1000.0)
        rng = np.random.default_rng(2)
        samples = [dist.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(1000.0, rel=0.05)

    def test_cv_is_one(self):
        assert Exponential(10.0).squared_cv == 1.0

    def test_invalid_mean_rejected(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestLognormal:
    def test_mean_is_parameterized(self):
        dist = Lognormal(1000.0, sigma=1.0)
        rng = np.random.default_rng(3)
        samples = [dist.sample(rng) for _ in range(50_000)]
        assert np.mean(samples) == pytest.approx(1000.0, rel=0.08)

    def test_cv_closed_form(self):
        dist = Lognormal(1000.0, sigma=0.5)
        assert dist.squared_cv == pytest.approx(np.expm1(0.25))

    def test_zero_sigma_is_deterministic(self):
        dist = Lognormal(1000.0, sigma=0.0)
        assert dist.sample(RNG) == pytest.approx(1000.0)


class TestTraceService:
    def test_replays_in_order_and_cycles(self):
        dist = TraceService([1.0, 2.0, 3.0])
        got = [dist.sample(RNG) for _ in range(7)]
        assert got == [1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]

    def test_mean_matches_trace(self):
        assert TraceService([1.0, 3.0]).mean == 2.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceService([])

    def test_negative_samples_rejected(self):
        with pytest.raises(ValueError):
            TraceService([1.0, -2.0])


@settings(max_examples=50, deadline=None)
@given(
    short=st.floats(1.0, 1e4),
    long_mult=st.floats(1.0, 1e3),
    frac=st.floats(0.0, 1.0),
)
def test_bimodal_mean_between_modes(short, long_mult, frac):
    """Property: the mean lies between the two modes."""
    long_ns = short * long_mult
    dist = Bimodal(short, long_ns, frac)
    assert short - 1e-9 <= dist.mean <= long_ns + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.floats(1.0, 1e6))
def test_all_samples_nonnegative(mean):
    """Property: every distribution only emits non-negative times."""
    rng = np.random.default_rng(0)
    for dist in (Fixed(mean), Exponential(mean), Lognormal(mean, 1.0),
                 Uniform(0.0, mean)):
        for _ in range(20):
            assert dist.sample(rng) >= 0.0
