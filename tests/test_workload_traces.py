"""Unit tests for trace record/replay."""

import numpy as np
import pytest

from repro.workload.traces import Trace, build_trace, load_trace, save_trace


class TestBuild:
    def test_defaults_filled(self):
        trace = build_trace([10.0, 20.0], [1.0, 2.0])
        assert len(trace) == 2
        assert list(trace.size_bytes) == [300, 300]
        assert list(trace.connection) == [0, 1]

    def test_mean_rate_and_service(self):
        trace = build_trace([10.0, 30.0], [5.0, 15.0])
        assert trace.mean_rate_rps == pytest.approx(2 / 40e-9)
        assert trace.mean_service_ns == 10.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                gaps_ns=np.array([1.0]),
                service_ns=np.array([1.0, 2.0]),
                size_bytes=np.array([1]),
                connection=np.array([1]),
            )

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            build_trace([], [])


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        trace = build_trace([10.0, 20.0, 30.0], [1.0, 2.0, 3.0],
                            size_bytes=[64, 128, 256], connection=[7, 8, 9])
        path = str(tmp_path / "trace.npz")
        save_trace(path, trace)
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.gaps_ns, trace.gaps_ns)
        np.testing.assert_array_equal(loaded.service_ns, trace.service_ns)
        np.testing.assert_array_equal(loaded.size_bytes, trace.size_bytes)
        np.testing.assert_array_equal(loaded.connection, trace.connection)

    def test_load_appends_npz_suffix(self, tmp_path):
        trace = build_trace([1.0], [1.0])
        base = str(tmp_path / "t")
        save_trace(base, trace)
        loaded = load_trace(base)  # no suffix supplied
        assert len(loaded) == 1

    def test_missing_fields_detected(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, gaps_ns=np.array([1.0]))
        with pytest.raises(ValueError, match="missing fields"):
            load_trace(path)
