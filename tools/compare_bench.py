#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and gate on regression.

Usage::

    python tools/compare_bench.py BASELINE.json CANDIDATE.json \
        [--threshold 0.02] [--benchmarks name1,name2]

For every benchmark present in both files (optionally restricted with
``--benchmarks``), the candidate's ``stats.min`` is compared to the
baseline's.  ``min`` is the least noise-sensitive point estimate a
microbenchmark produces -- the fastest observed run bounds the true cost
from above on both sides.  Exits 1 if any compared benchmark regressed
by more than ``--threshold`` (relative), which is how CI and ``make
bench-gate`` enforce the <=2% telemetry-overhead budget on the gated
microbenchmarks.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional


def load_mins(path: str) -> Dict[str, float]:
    """Benchmark name -> stats.min from a pytest-benchmark JSON file."""
    with open(path) as handle:
        doc = json.load(handle)
    return {b["name"]: float(b["stats"]["min"]) for b in doc["benchmarks"]}


def compare(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    threshold: float,
    only: Optional[List[str]] = None,
) -> List[str]:
    """Return a list of human-readable regression messages (empty = pass).

    Raises :class:`KeyError` if a requested benchmark is missing from
    either side -- a silently skipped gate is worse than a failing one.
    """
    names = only if only is not None else sorted(
        set(baseline) & set(candidate)
    )
    if not names:
        def _listing(mins: Dict[str, float]) -> str:
            return ", ".join(sorted(mins)) if mins else "<none>"

        raise KeyError(
            "no benchmarks in common between the two files -- nothing "
            "was gated (baseline has: "
            f"{_listing(baseline)}; candidate has: {_listing(candidate)})"
        )
    failures: List[str] = []
    for name in names:
        if name not in baseline:
            raise KeyError(f"benchmark {name!r} missing from baseline")
        if name not in candidate:
            raise KeyError(f"benchmark {name!r} missing from candidate")
        base, cand = baseline[name], candidate[name]
        delta = cand / base - 1.0
        verdict = "FAIL" if delta > threshold else "ok"
        print(f"{verdict:>4}  {name}: min {base:.6g}s -> {cand:.6g}s "
              f"({delta:+.2%}, threshold +{threshold:.0%})")
        if delta > threshold:
            failures.append(
                f"{name} regressed {delta:+.2%} (> +{threshold:.0%})"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline pytest-benchmark JSON")
    parser.add_argument("candidate", help="candidate pytest-benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.02,
        help="max allowed relative regression of stats.min (default 0.02)",
    )
    parser.add_argument(
        "--benchmarks", default=None, metavar="N1,N2",
        help="comma-separated benchmark names to gate on (default: all "
             "benchmarks present in both files)",
    )
    args = parser.parse_args(argv)
    only = args.benchmarks.split(",") if args.benchmarks else None
    try:
        failures = compare(
            load_mins(args.baseline), load_mins(args.candidate),
            args.threshold, only,
        )
    except KeyError as exc:
        # exc.args[0], not str(exc): KeyError repr-quotes its message.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if failures:
        print("\n".join(failures), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
