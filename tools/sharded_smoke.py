#!/usr/bin/env python
"""Serial-vs-sharded equivalence smoke for CI.

Runs one small datacenter configuration twice -- on the serial engine
and under ``--shards N`` sharded parallel-in-time execution -- writes
each run's full fingerprint (per-request timestamps/placement, run
scalars, telemetry snapshot) as JSON into ``--out``, and exits non-zero
with a readable diff if they are not bit-identical.  The two JSON files
are left on disk either way so CI can upload them as artifacts on
failure.

Usage::

    python tools/sharded_smoke.py [--shards 2] [--requests 2000]
        [--seed 7] [--out sharded-smoke/]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def _fingerprint(result, sharded: bool) -> dict:
    """Everything the sharded mode promises to reproduce, exactly.

    Floats are ``repr``'d so the comparison (and the artifact diff) is
    bit-exact, not print-rounded.  Engine-internal ``sim.*`` instruments
    (each shard legitimately runs its own event heap) and the sharded
    tier's own ``shard.*`` overhead counters are excluded from the
    comparable snapshot; everything else must match.
    """
    return {
        "requests": [
            [
                r.req_id,
                repr(r.arrival),
                repr(r.enqueued),
                repr(r.started),
                repr(r.finished),
                r.core_id,
                r.group_id,
                r.migrations,
                r.steals,
                bool(r.dropped),
            ]
            for r in result.requests
        ],
        "scalars": {
            "sim_time_ns": repr(result.sim_time_ns),
            "throughput_rps": repr(result.throughput_rps),
            "utilization": repr(result.utilization),
            "dropped": result.dropped,
            "p50": repr(result.latency.p50),
            "p99": repr(result.latency.p99),
            "mean": repr(result.latency.mean),
            "extra": {k: repr(v) for k, v in sorted(result.extra.items())},
        },
        "metrics": {
            key: repr(value)
            for key, value in sorted(result.metrics.items())
            if "sim" not in key.split(".") and not key.startswith("shard.")
        },
    }


def _diff(serial: dict, sharded: dict, limit: int = 20) -> List[str]:
    lines: List[str] = []
    for section in ("scalars", "metrics"):
        a, b = serial[section], sharded[section]
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                lines.append(
                    f"{section}.{key}: serial={a.get(key)!r} "
                    f"sharded={b.get(key)!r}"
                )
    if serial["requests"] != sharded["requests"]:
        mismatches = sum(
            1 for x, y in zip(serial["requests"], sharded["requests"])
            if x != y
        )
        lines.append(
            f"requests: {mismatches} differing rows of "
            f"{len(serial['requests'])} "
            f"(counts {len(serial['requests'])} vs "
            f"{len(sharded['requests'])})"
        )
        for x, y in zip(serial["requests"], sharded["requests"]):
            if x != y:
                lines.append(f"  first differing row: {x} vs {y}")
                break
    return lines[:limit]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--requests", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--out", default="sharded-smoke",
                        help="directory for serial.json / sharded.json")
    args = parser.parse_args(argv)

    from repro.api import quick_run

    params = dict(
        system="datacenter",
        n_cores=32,
        rate_rps=24e6,
        mean_service_ns=1000.0,
        n_requests=args.requests,
        seed=args.seed,
    )
    serial = _fingerprint(quick_run(**params), sharded=False)
    sharded = _fingerprint(
        quick_run(shards=args.shards, **params), sharded=True
    )

    os.makedirs(args.out, exist_ok=True)
    for name, doc in (("serial", serial), ("sharded", sharded)):
        with open(os.path.join(args.out, f"{name}.json"), "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)

    diff = _diff(serial, sharded)
    if diff:
        print(f"serial vs --shards {args.shards}: NOT bit-identical",
              file=sys.stderr)
        for line in diff:
            print(f"  {line}", file=sys.stderr)
        print(f"full fingerprints in {args.out}/", file=sys.stderr)
        return 1
    print(
        f"serial vs --shards {args.shards}: bit-identical "
        f"({len(serial['requests'])} measured requests, "
        f"{len(serial['metrics'])} compared instruments)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
